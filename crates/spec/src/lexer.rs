//! Tokenizer for the Sekitei specification language.
//!
//! The surface syntax mirrors the paper's Figures 2 and 6 in a brace-based
//! form; see the crate docs for the grammar. Comments run from `#` or `//`
//! to end of line.

use crate::error::SpecError;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal.
    Num(f64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `:=`
    Assign,
    /// `-=`
    SubAssign,
    /// `+=`
    AddAssign,
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `==`
    EqEq,
    /// `--` (link connector)
    DashDash,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Num(n) => write!(f, "{n}"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Comma => write!(f, ","),
            Tok::Semi => write!(f, ";"),
            Tok::Dot => write!(f, "."),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Assign => write!(f, ":="),
            Tok::SubAssign => write!(f, "-="),
            Tok::AddAssign => write!(f, "+="),
            Tok::Le => write!(f, "<="),
            Tok::Lt => write!(f, "<"),
            Tok::Ge => write!(f, ">="),
            Tok::Gt => write!(f, ">"),
            Tok::EqEq => write!(f, "=="),
            Tok::DashDash => write!(f, "--"),
        }
    }
}

/// A token with its source line (1-based), for error reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Source line.
    pub line: u32,
}

/// Tokenize a source string.
pub fn lex(src: &str) -> Result<Vec<Spanned>, SpecError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => {
                out.push(Spanned { tok: Tok::LBrace, line });
                i += 1;
            }
            '}' => {
                out.push(Spanned { tok: Tok::RBrace, line });
                i += 1;
            }
            '(' => {
                out.push(Spanned { tok: Tok::LParen, line });
                i += 1;
            }
            ')' => {
                out.push(Spanned { tok: Tok::RParen, line });
                i += 1;
            }
            '[' => {
                out.push(Spanned { tok: Tok::LBracket, line });
                i += 1;
            }
            ']' => {
                out.push(Spanned { tok: Tok::RBracket, line });
                i += 1;
            }
            ',' => {
                out.push(Spanned { tok: Tok::Comma, line });
                i += 1;
            }
            ';' => {
                out.push(Spanned { tok: Tok::Semi, line });
                i += 1;
            }
            '.' => {
                out.push(Spanned { tok: Tok::Dot, line });
                i += 1;
            }
            '+' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { tok: Tok::AddAssign, line });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Tok::Plus, line });
                    i += 1;
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { tok: Tok::SubAssign, line });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'-') {
                    out.push(Spanned { tok: Tok::DashDash, line });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Tok::Minus, line });
                    i += 1;
                }
            }
            '*' => {
                out.push(Spanned { tok: Tok::Star, line });
                i += 1;
            }
            '/' => {
                out.push(Spanned { tok: Tok::Slash, line });
                i += 1;
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { tok: Tok::Assign, line });
                    i += 2;
                } else {
                    return Err(SpecError::lex(line, "expected `:=`"));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { tok: Tok::Le, line });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Tok::Lt, line });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { tok: Tok::Ge, line });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Tok::Gt, line });
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { tok: Tok::EqEq, line });
                    i += 2;
                } else {
                    return Err(SpecError::lex(line, "expected `==`"));
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    // don't swallow a `.` that isn't followed by a digit
                    if bytes[i] == b'.' && !(i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit()) {
                        break;
                    }
                    i += 1;
                }
                let text = &src[start..i];
                let n: f64 = text
                    .parse()
                    .map_err(|_| SpecError::lex(line, format!("bad number `{text}`")))?;
                out.push(Spanned { tok: Tok::Num(n), line });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Spanned { tok: Tok::Ident(src[start..i].to_string()), line });
            }
            other => return Err(SpecError::lex(line, format!("unexpected character `{other}`"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn idents_numbers_punct() {
        assert_eq!(
            toks("node.cpu >= (T.ibw + I.ibw) / 5;"),
            vec![
                Tok::Ident("node".into()),
                Tok::Dot,
                Tok::Ident("cpu".into()),
                Tok::Ge,
                Tok::LParen,
                Tok::Ident("T".into()),
                Tok::Dot,
                Tok::Ident("ibw".into()),
                Tok::Plus,
                Tok::Ident("I".into()),
                Tok::Dot,
                Tok::Ident("ibw".into()),
                Tok::RParen,
                Tok::Slash,
                Tok::Num(5.0),
                Tok::Semi,
            ]
        );
    }

    #[test]
    fn compound_operators() {
        assert_eq!(
            toks("a := b; c -= d; e += f; g == h; i <= j; k -- l"),
            vec![
                Tok::Ident("a".into()),
                Tok::Assign,
                Tok::Ident("b".into()),
                Tok::Semi,
                Tok::Ident("c".into()),
                Tok::SubAssign,
                Tok::Ident("d".into()),
                Tok::Semi,
                Tok::Ident("e".into()),
                Tok::AddAssign,
                Tok::Ident("f".into()),
                Tok::Semi,
                Tok::Ident("g".into()),
                Tok::EqEq,
                Tok::Ident("h".into()),
                Tok::Semi,
                Tok::Ident("i".into()),
                Tok::Le,
                Tok::Ident("j".into()),
                Tok::Semi,
                Tok::Ident("k".into()),
                Tok::DashDash,
                Tok::Ident("l".into()),
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("31.5 100 0.7 1e3 2.5e-2"),
            vec![Tok::Num(31.5), Tok::Num(100.0), Tok::Num(0.7), Tok::Num(1000.0), Tok::Num(0.025),]
        );
    }

    #[test]
    fn comments_and_lines() {
        let spanned = lex("a # comment\nb // another\nc").unwrap();
        assert_eq!(spanned.len(), 3);
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[1].line, 2);
        assert_eq!(spanned[2].line, 3);
    }

    #[test]
    fn dot_not_swallowed_by_number() {
        // `5.x` must lex as Num(5), Dot, Ident(x) — not a bad number
        assert_eq!(toks("5.x"), vec![Tok::Num(5.0), Tok::Dot, Tok::Ident("x".into())]);
    }

    #[test]
    fn errors() {
        assert!(lex("a ? b").is_err());
        assert!(lex("a : b").is_err());
        assert!(lex("a = b").is_err());
    }
}
