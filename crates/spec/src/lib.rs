//! # sekitei-spec
//!
//! Textual specification language for CPP domains — the practical face of
//! the paper's Figures 2 and 6 — plus a compact binary wire format.
//!
//! ```
//! let src = r#"
//!     resource node cpu;
//!     resource link lbw;
//!     interface M {
//!         property ibw;
//!         levels ibw [90, 100];
//!         cross {
//!             effect { link.lbw -= min(M.ibw, link.lbw);
//!                      M.ibw := min(M.ibw, link.lbw); }
//!             cost 1 + M.ibw / 10;
//!         }
//!     }
//!     component Client {
//!         requires M;
//!         when { M.ibw >= 90; }
//!         cost 1 + M.ibw / 10;
//!     }
//!     network {
//!         node n0 { cpu 30; }
//!         node n1 { cpu 30; }
//!         link n0 -- n1 lan { lbw 150; }
//!     }
//!     problem {
//!         source M at n0 { ibw up to 200; }
//!         goal Client at n1;
//!     }
//! "#;
//! let problem = sekitei_spec::parse_problem(src).unwrap();
//! assert_eq!(problem.components.len(), 1);
//! // print → parse is the identity (structurally)
//! let printed = sekitei_spec::print_problem(&problem);
//! let again = sekitei_spec::parse_problem(&printed).unwrap();
//! assert_eq!(problem.components, again.components);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod wire;

pub use error::SpecError;
pub use parser::{parse_expr, parse_problem};
pub use printer::print_problem;
pub use wire::{
    decode, decode_outcome, decode_phases, decode_snapshot_header, decode_snapshot_record, encode,
    encode_outcome, encode_phases, encode_snapshot_header, encode_snapshot_record, WireOutcome,
    WirePhase, WirePlan, WireSnapshotRecord, WireStats, WireStep, WireStepKind,
    SNAPSHOT_HEADER_LEN,
};
