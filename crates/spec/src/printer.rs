//! Pretty-printer: renders a [`CppProblem`] back to the specification
//! language, such that `parse(print(p))` reproduces `p` structurally.

use sekitei_model::resource::Elasticity;
use sekitei_model::{
    CppProblem, Expr, LevelSpec, LinkClass, Placement, SCond, SEffect, SExpr, SpecVar,
};
use std::fmt::Write;

/// Render a complete problem specification.
pub fn print_problem(p: &CppProblem) -> String {
    let mut out = String::new();
    for r in &p.resources {
        let _ = write!(out, "resource {} {}", r.locus, r.name);
        if !r.levels.is_trivial() {
            let _ = write!(out, " levels {}", levels(&r.levels));
        }
        match r.elasticity {
            Elasticity::Degradable => {}
            Elasticity::Upgradable => out.push_str(" upgradable"),
            Elasticity::Rigid => out.push_str(" rigid"),
        }
        if !r.consumable {
            out.push_str(" static");
        }
        out.push_str(";\n");
    }
    out.push('\n');

    for i in &p.interfaces {
        let _ = writeln!(out, "interface {} {{", i.name);
        if !i.properties.is_empty() {
            let _ = writeln!(out, "    property {};", i.properties.join(", "));
        }
        if !i.degradable {
            out.push_str("    rigid;\n");
        }
        for (prop, ls) in &i.levels {
            if !ls.is_trivial() {
                let _ = writeln!(out, "    levels {prop} {};", levels(ls));
            }
        }
        let has_cross = !i.cross_conditions.is_empty()
            || !i.cross_effects.is_empty()
            || i.cross_cost != Expr::c(1.0);
        if has_cross {
            out.push_str("    cross {\n");
            if !i.cross_conditions.is_empty() {
                out.push_str("        when {\n");
                for c in &i.cross_conditions {
                    let _ = writeln!(out, "            {};", cond(c));
                }
                out.push_str("        }\n");
            }
            if !i.cross_effects.is_empty() {
                out.push_str("        effect {\n");
                for e in &i.cross_effects {
                    let _ = writeln!(out, "            {};", effect(e));
                }
                out.push_str("        }\n");
            }
            let _ = writeln!(out, "        cost {};", expr(&i.cross_cost));
            out.push_str("    }\n");
        }
        out.push_str("}\n\n");
    }

    for c in &p.components {
        let _ = writeln!(out, "component {} {{", c.name);
        if !c.requires.is_empty() {
            let _ = writeln!(out, "    requires {};", c.requires.join(", "));
        }
        if !c.implements.is_empty() {
            let _ = writeln!(out, "    implements {};", c.implements.join(", "));
        }
        if !c.conditions.is_empty() {
            out.push_str("    when {\n");
            for cd in &c.conditions {
                let _ = writeln!(out, "        {};", cond(cd));
            }
            out.push_str("    }\n");
        }
        if !c.effects.is_empty() {
            out.push_str("    effect {\n");
            for e in &c.effects {
                let _ = writeln!(out, "        {};", effect(e));
            }
            out.push_str("    }\n");
        }
        let _ = writeln!(out, "    cost {};", expr(&c.cost));
        if let Placement::Only(nodes) = &c.placement {
            let _ = writeln!(out, "    only on {};", nodes.join(", "));
        }
        out.push_str("}\n\n");
    }

    out.push_str("network {\n");
    for (_, n) in p.network.nodes() {
        let _ = write!(out, "    node {} {{ ", n.name);
        for (k, v) in &n.resources {
            let _ = write!(out, "{k} {v}; ");
        }
        out.push_str("}\n");
    }
    for (_, l) in p.network.links() {
        let class = match l.class {
            LinkClass::Lan => " lan",
            LinkClass::Wan => " wan",
            LinkClass::Other => "",
        };
        let _ = write!(
            out,
            "    link {} -- {}{class} {{ ",
            p.network.node(l.a).name,
            p.network.node(l.b).name
        );
        for (k, v) in &l.resources {
            let _ = write!(out, "{k} {v}; ");
        }
        out.push_str("}\n");
    }
    out.push_str("}\n\nproblem {\n");
    for s in &p.sources {
        let _ = write!(out, "    source {} at {} {{ ", s.iface, p.network.node(s.node).name);
        for (prop, iv) in &s.properties {
            if iv.lo == 0.0 {
                let _ = write!(out, "{prop} up to {}; ", iv.hi);
            } else {
                let _ = write!(out, "{prop} in [{}, {}]; ", iv.lo, iv.hi);
            }
        }
        out.push_str("}\n");
    }
    for pp in &p.pre_placed {
        let _ = writeln!(out, "    placed {} at {};", pp.component, p.network.node(pp.node).name);
    }
    for g in &p.goals {
        let _ = writeln!(out, "    goal {} at {};", g.component, p.network.node(g.node).name);
    }
    out.push_str("}\n");
    out
}

fn levels(ls: &LevelSpec) -> String {
    let cuts: Vec<String> = ls.cutpoints().iter().map(|c| c.to_string()).collect();
    format!("[{}]", cuts.join(", "))
}

/// Render an expression with explicit parentheses (re-parses identically).
pub fn expr(e: &SExpr) -> String {
    match e {
        Expr::Const(c) => {
            if *c < 0.0 {
                format!("(0 - {})", -c)
            } else {
                c.to_string()
            }
        }
        Expr::Var(v) => var(v),
        Expr::Add(a, b) => format!("({} + {})", expr(a), expr(b)),
        Expr::Sub(a, b) => format!("({} - {})", expr(a), expr(b)),
        Expr::Mul(a, b) => format!("({} * {})", expr(a), expr(b)),
        Expr::Div(a, b) => format!("({} / {})", expr(a), expr(b)),
        Expr::Min(a, b) => format!("min({}, {})", expr(a), expr(b)),
        Expr::Max(a, b) => format!("max({}, {})", expr(a), expr(b)),
        Expr::Neg(a) => format!("(-{})", expr(a)),
    }
}

fn var(v: &SpecVar) -> String {
    v.to_string()
}

fn cond(c: &SCond) -> String {
    format!("{} {} {}", expr(&c.lhs), c.op, expr(&c.rhs))
}

fn effect(e: &SEffect) -> String {
    format!("{} {} {}", var(&e.target), e.op, expr(&e.value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_problem;
    use sekitei_model::LevelScenario;
    use sekitei_topology::scenarios;

    #[test]
    fn roundtrip_tiny_all_scenarios() {
        for sc in LevelScenario::ALL {
            let p = scenarios::tiny(sc);
            let text = print_problem(&p);
            let q = parse_problem(&text)
                .unwrap_or_else(|e| panic!("scenario {sc:?} reparse failed: {e}\n{text}"));
            assert_eq!(p.resources, q.resources, "{sc:?}");
            assert_eq!(p.interfaces, q.interfaces, "{sc:?}");
            assert_eq!(p.components, q.components, "{sc:?}");
            assert_eq!(p.sources, q.sources, "{sc:?}");
            assert_eq!(p.goals, q.goals, "{sc:?}");
            assert_eq!(p.network.num_nodes(), q.network.num_nodes());
            assert_eq!(p.network.num_links(), q.network.num_links());
        }
    }

    #[test]
    fn roundtrip_small_and_tradeoff() {
        for p in [scenarios::small(LevelScenario::D), scenarios::tradeoff(1.5)] {
            let text = print_problem(&p);
            let q = parse_problem(&text).expect("reparse");
            assert_eq!(p.components, q.components);
            assert_eq!(p.network.num_links(), q.network.num_links());
        }
    }

    #[test]
    fn roundtrip_preserves_planning_behavior() {
        let p = scenarios::tiny(LevelScenario::C);
        let q = parse_problem(&print_problem(&p)).unwrap();
        let planner = sekitei_planner::Planner::default();
        let a = planner.plan(&p).unwrap();
        let b = planner.plan(&q).unwrap();
        let (pa, pb) = (a.plan.unwrap(), b.plan.unwrap());
        assert_eq!(pa.len(), pb.len());
        assert!((pa.cost_lower_bound - pb.cost_lower_bound).abs() < 1e-9);
    }

    #[test]
    fn negative_constant_renders_parseable() {
        assert_eq!(expr(&Expr::<SpecVar>::c(-3.5)), "(0 - 3.5)");
    }
}
