//! Spec-language errors.

use std::fmt;

/// Errors from lexing, parsing or decoding specifications.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// Lexical error.
    Lex {
        /// Source line.
        line: u32,
        /// Description.
        msg: String,
    },
    /// Parse error.
    Parse {
        /// Source line (0 = end of input).
        line: u32,
        /// Description.
        msg: String,
    },
    /// The parsed problem failed model validation.
    Model(sekitei_model::ModelError),
    /// Binary wire-format decoding error.
    Wire(String),
}

impl SpecError {
    pub(crate) fn lex(line: u32, msg: impl Into<String>) -> Self {
        SpecError::Lex { line, msg: msg.into() }
    }

    pub(crate) fn parse(line: u32, msg: impl Into<String>) -> Self {
        SpecError::Parse { line, msg: msg.into() }
    }

    /// Construct a wire-format error. Public because the serving protocol
    /// layer (frames and envelopes around `SKT1`/`SKO1` payloads) reports
    /// its own malformed-bytes conditions through the same type.
    pub fn wire(msg: impl Into<String>) -> Self {
        SpecError::Wire(msg.into())
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Lex { line, msg } => write!(f, "lex error (line {line}): {msg}"),
            SpecError::Parse { line, msg } if *line == 0 => {
                write!(f, "parse error at end of input: {msg}")
            }
            SpecError::Parse { line, msg } => write!(f, "parse error (line {line}): {msg}"),
            SpecError::Model(e) => write!(f, "invalid specification: {e}"),
            SpecError::Wire(msg) => write!(f, "wire decode error: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<sekitei_model::ModelError> for SpecError {
    fn from(e: sekitei_model::ModelError) -> Self {
        SpecError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert!(SpecError::lex(3, "bad").to_string().contains("line 3"));
        assert!(SpecError::parse(0, "eof").to_string().contains("end of input"));
        assert!(SpecError::parse(7, "x").to_string().contains("line 7"));
        assert!(SpecError::wire("short").to_string().contains("short"));
    }
}
