//! Property-based round-trip tests for the spec language and wire format.

use proptest::prelude::*;
use sekitei_model::{Expr, Interval, LevelScenario, MediaConfig, SExpr, SpecVar};
use sekitei_spec::{decode, encode, parse_expr, parse_problem, print_problem};
use sekitei_topology::scenarios;

/// Random spec-level expressions over a small vocabulary.
fn arb_sexpr() -> impl Strategy<Value = SExpr> {
    let leaf = prop_oneof![
        (0.0..1000.0f64).prop_map(|c| Expr::c((c * 100.0).round() / 100.0)),
        Just(Expr::var(SpecVar::iface("M", "ibw"))),
        Just(Expr::var(SpecVar::iface("T", "ibw"))),
        Just(Expr::var(SpecVar::node("cpu"))),
        Just(Expr::var(SpecVar::link("lbw"))),
    ];
    leaf.prop_recursive(5, 64, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a / b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.min_e(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.max_e(b)),
            inner.clone().prop_map(|a| Expr::Neg(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn expr_print_parse_roundtrip(e in arb_sexpr()) {
        let text = sekitei_spec::printer::expr(&e);
        let parsed = parse_expr(&text)
            .unwrap_or_else(|err| panic!("reparse of `{text}` failed: {err}"));
        prop_assert_eq!(&parsed, &e, "{}", text);
    }

    #[test]
    fn expr_roundtrip_preserves_value(e in arb_sexpr(),
                                       m in 0.0..200.0f64, t in 0.0..140.0f64,
                                       c in 0.0..40.0f64, l in 0.0..150.0f64) {
        let text = sekitei_spec::printer::expr(&e);
        let parsed = parse_expr(&text).unwrap();
        let mut env = |v: &SpecVar| match v {
            SpecVar::Iface { iface, .. } if iface == "M" => m,
            SpecVar::Iface { .. } => t,
            SpecVar::Node { .. } => c,
            SpecVar::Link { .. } => l,
        };
        let a = e.eval(&mut env);
        let b = parsed.eval(&mut env);
        prop_assert!(a == b || (a.is_nan() && b.is_nan()), "{a} vs {b} for `{text}`");
    }

    #[test]
    fn media_problem_roundtrips_under_config(demand in 50.0..120.0f64,
                                             split in 0.3..0.9f64,
                                             ratio in 0.2..0.9f64) {
        let cfg = MediaConfig {
            client_demand: (demand * 10.0).round() / 10.0,
            split_t: (split * 100.0).round() / 100.0,
            zip_ratio: (ratio * 100.0).round() / 100.0,
            ..MediaConfig::default()
        };
        for sc in [LevelScenario::A, LevelScenario::C, LevelScenario::E] {
            let p = scenarios::tiny_with(cfg, sc);
            // text round-trip
            let q = parse_problem(&print_problem(&p)).unwrap();
            prop_assert_eq!(&p.components, &q.components);
            prop_assert_eq!(&p.interfaces, &q.interfaces);
            prop_assert_eq!(&p.resources, &q.resources);
            // wire round-trip
            let r = decode(&encode(&p)).unwrap();
            prop_assert_eq!(&p.components, &r.components);
            prop_assert_eq!(&p.sources, &r.sources);
        }
    }

    #[test]
    fn wire_never_panics_on_mutation(seed in 0usize..64, flip in any::<u8>()) {
        let p = scenarios::tiny(LevelScenario::D);
        let mut bytes = encode(&p).to_vec();
        let idx = 4 + (seed * 131) % (bytes.len() - 4);
        bytes[idx] ^= flip | 1;
        let _ = decode(&bytes); // must not panic
    }

    #[test]
    fn source_intervals_roundtrip(lo in 0.0..50.0f64, hi in 50.0..300.0f64) {
        let mut p = scenarios::tiny(LevelScenario::C);
        let lo = (lo * 10.0).round() / 10.0;
        let hi = (hi * 10.0).round() / 10.0;
        p.sources[0].properties.insert("ibw".into(), Interval::new(lo, hi));
        let q = parse_problem(&print_problem(&p)).unwrap();
        prop_assert_eq!(&p.sources, &q.sources);
        let r = decode(&encode(&p)).unwrap();
        prop_assert_eq!(&p.sources, &r.sources);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The parser must never panic, whatever bytes arrive.
    #[test]
    fn parser_never_panics_on_garbage(src in "\\PC{0,200}") {
        let _ = parse_problem(&src);
        let _ = parse_expr(&src);
    }

    /// Nor on "almost valid" input: a real spec with a random slice
    /// deleted or duplicated.
    #[test]
    fn parser_never_panics_on_mutations(cut_start in 0usize..1500,
                                        cut_len in 0usize..300,
                                        duplicate in proptest::bool::ANY) {
        let base = print_problem(&scenarios::tiny(LevelScenario::D));
        let bytes = base.as_bytes();
        let start = cut_start.min(bytes.len());
        let end = (start + cut_len).min(bytes.len());
        // splice on char boundaries only
        let (mut s, mut e) = (start, end);
        while s > 0 && !base.is_char_boundary(s) { s -= 1; }
        while e < base.len() && !base.is_char_boundary(e) { e += 1; }
        let mutated = if duplicate {
            format!("{}{}{}", &base[..e], &base[s..e], &base[e..])
        } else {
            format!("{}{}", &base[..s], &base[e..])
        };
        let _ = parse_problem(&mutated);
    }
}
