//! Property-based round-trip tests for the spec language and wire format.

use proptest::prelude::*;
use sekitei_model::{Expr, Interval, LevelScenario, MediaConfig, SExpr, SpecVar};
use sekitei_spec::{
    decode, decode_outcome, encode, encode_outcome, parse_expr, parse_problem, print_problem,
    WireOutcome, WirePlan, WireStats, WireStep, WireStepKind,
};
use sekitei_topology::scenarios;

/// Random spec-level expressions over a small vocabulary.
fn arb_sexpr() -> impl Strategy<Value = SExpr> {
    let leaf = prop_oneof![
        (0.0..1000.0f64).prop_map(|c| Expr::c((c * 100.0).round() / 100.0)),
        Just(Expr::var(SpecVar::iface("M", "ibw"))),
        Just(Expr::var(SpecVar::iface("T", "ibw"))),
        Just(Expr::var(SpecVar::node("cpu"))),
        Just(Expr::var(SpecVar::link("lbw"))),
    ];
    leaf.prop_recursive(5, 64, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a / b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.min_e(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.max_e(b)),
            inner.clone().prop_map(|a| Expr::Neg(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn expr_print_parse_roundtrip(e in arb_sexpr()) {
        let text = sekitei_spec::printer::expr(&e);
        let parsed = parse_expr(&text)
            .unwrap_or_else(|err| panic!("reparse of `{text}` failed: {err}"));
        prop_assert_eq!(&parsed, &e, "{}", text);
    }

    #[test]
    fn expr_roundtrip_preserves_value(e in arb_sexpr(),
                                       m in 0.0..200.0f64, t in 0.0..140.0f64,
                                       c in 0.0..40.0f64, l in 0.0..150.0f64) {
        let text = sekitei_spec::printer::expr(&e);
        let parsed = parse_expr(&text).unwrap();
        let mut env = |v: &SpecVar| match v {
            SpecVar::Iface { iface, .. } if iface == "M" => m,
            SpecVar::Iface { .. } => t,
            SpecVar::Node { .. } => c,
            SpecVar::Link { .. } => l,
        };
        let a = e.eval(&mut env);
        let b = parsed.eval(&mut env);
        prop_assert!(a == b || (a.is_nan() && b.is_nan()), "{a} vs {b} for `{text}`");
    }

    #[test]
    fn media_problem_roundtrips_under_config(demand in 50.0..120.0f64,
                                             split in 0.3..0.9f64,
                                             ratio in 0.2..0.9f64) {
        let cfg = MediaConfig {
            client_demand: (demand * 10.0).round() / 10.0,
            split_t: (split * 100.0).round() / 100.0,
            zip_ratio: (ratio * 100.0).round() / 100.0,
            ..MediaConfig::default()
        };
        for sc in [LevelScenario::A, LevelScenario::C, LevelScenario::E] {
            let p = scenarios::tiny_with(cfg, sc);
            // text round-trip
            let q = parse_problem(&print_problem(&p)).unwrap();
            prop_assert_eq!(&p.components, &q.components);
            prop_assert_eq!(&p.interfaces, &q.interfaces);
            prop_assert_eq!(&p.resources, &q.resources);
            // wire round-trip
            let r = decode(&encode(&p)).unwrap();
            prop_assert_eq!(&p.components, &r.components);
            prop_assert_eq!(&p.sources, &r.sources);
        }
    }

    #[test]
    fn wire_never_panics_on_mutation(seed in 0usize..64, flip in any::<u8>()) {
        let p = scenarios::tiny(LevelScenario::D);
        let mut bytes = encode(&p).to_vec();
        let idx = 4 + (seed * 131) % (bytes.len() - 4);
        bytes[idx] ^= flip | 1;
        let _ = decode(&bytes); // must not panic
    }

    #[test]
    fn source_intervals_roundtrip(lo in 0.0..50.0f64, hi in 50.0..300.0f64) {
        let mut p = scenarios::tiny(LevelScenario::C);
        let lo = (lo * 10.0).round() / 10.0;
        let hi = (hi * 10.0).round() / 10.0;
        p.sources[0].properties.insert("ibw".into(), Interval::new(lo, hi));
        let q = parse_problem(&print_problem(&p)).unwrap();
        prop_assert_eq!(&p.sources, &q.sources);
        let r = decode(&encode(&p)).unwrap();
        prop_assert_eq!(&p.sources, &r.sources);
    }
}

/// Deterministic pseudo-random outcome generator (SplitMix64 over a seed
/// word) — enough variety to exercise every branch of the outcome codec.
struct OutcomeRng(u64);

impl OutcomeRng {
    fn word(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn f(&mut self, hi: f64) -> f64 {
        (self.word() % 1_000_000) as f64 * hi / 1e6
    }
}

fn outcome_from_seed(seed: u64, with_plan: bool, nsteps: usize) -> WireOutcome {
    let mut r = OutcomeRng(seed);
    let kinds = [WireStepKind::Place, WireStepKind::Cross, WireStepKind::Other];
    let plan = with_plan.then(|| WirePlan {
        steps: (0..nsteps)
            .map(|i| WireStep {
                name: format!("step-{i}-{}", r.word() % 997),
                kind: kinds[(r.word() % 3) as usize],
                cost_lb: r.f(10.0),
            })
            .collect(),
        cost_lower_bound: r.f(100.0),
        degraded: r.word().is_multiple_of(2),
        source_values: (0..r.word() % 4).map(|_| ((r.word() % 4096) as u32, r.f(200.0))).collect(),
    });
    let best_bound = (r.word().is_multiple_of(2)).then(|| r.f(50.0));
    let optimality_gap = (r.word().is_multiple_of(2)).then(|| r.f(25.0));
    let certificate = (r.word().is_multiple_of(2))
        .then(|| (0..r.word() % 64).map(|_| (r.word() & 0xff) as u8).collect::<Vec<u8>>());
    WireOutcome {
        plan,
        best_bound,
        optimality_gap,
        certificate,
        stats: WireStats {
            total_actions: r.word() % 100_000,
            plrg_props: r.word() % 100_000,
            plrg_actions: r.word() % 100_000,
            slrg_nodes: r.word() % 100_000,
            rg_nodes: r.word() % 100_000,
            rg_open_left: r.word() % 100_000,
            replay_prunes: r.word() % 100_000,
            candidate_rejects: r.word() % 100_000,
            total_time_us: r.word() % 10_000_000,
            search_time_us: r.word() % 10_000_000,
            budget_exhausted: r.word().is_multiple_of(2),
            deadline_hit: r.word().is_multiple_of(2),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode→decode→encode is the identity on outcome bytes.
    #[test]
    fn outcome_wire_roundtrip_identity(seed in any::<u64>(),
                                       with_plan in proptest::bool::ANY,
                                       nsteps in 0usize..24) {
        let o = outcome_from_seed(seed, with_plan, nsteps);
        let bytes = encode_outcome(&o);
        let q = decode_outcome(&bytes).unwrap();
        prop_assert_eq!(&o, &q);
        prop_assert_eq!(&bytes, &encode_outcome(&q));
    }

    /// encode→decode→encode is the identity on problem bytes.
    #[test]
    fn problem_wire_roundtrip_identity(demand in 50.0..120.0f64) {
        let cfg = MediaConfig {
            client_demand: (demand * 10.0).round() / 10.0,
            ..MediaConfig::default()
        };
        for sc in LevelScenario::ALL {
            let p = scenarios::tiny_with(cfg, sc);
            let bytes = encode(&p);
            let q = decode(&bytes).unwrap();
            prop_assert_eq!(&bytes, &encode(&q), "{sc:?}");
        }
    }

    /// The outcome decoder must never panic on corrupted bytes.
    #[test]
    fn outcome_never_panics_on_mutation(seed in any::<u64>(),
                                        idx in 0usize..512,
                                        flip in any::<u8>()) {
        let o = outcome_from_seed(seed, true, 8);
        let mut bytes = encode_outcome(&o).to_vec();
        let i = idx % bytes.len();
        bytes[i] ^= flip | 1;
        let _ = decode_outcome(&bytes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The parser must never panic, whatever bytes arrive.
    #[test]
    fn parser_never_panics_on_garbage(src in "\\PC{0,200}") {
        let _ = parse_problem(&src);
        let _ = parse_expr(&src);
    }

    /// Nor on "almost valid" input: a real spec with a random slice
    /// deleted or duplicated.
    #[test]
    fn parser_never_panics_on_mutations(cut_start in 0usize..1500,
                                        cut_len in 0usize..300,
                                        duplicate in proptest::bool::ANY) {
        let base = print_problem(&scenarios::tiny(LevelScenario::D));
        let bytes = base.as_bytes();
        let start = cut_start.min(bytes.len());
        let end = (start + cut_len).min(bytes.len());
        // splice on char boundaries only
        let (mut s, mut e) = (start, end);
        while s > 0 && !base.is_char_boundary(s) { s -= 1; }
        while e < base.len() && !base.is_char_boundary(e) { e += 1; }
        let mutated = if duplicate {
            format!("{}{}{}", &base[..e], &base[s..e], &base[e..])
        } else {
            format!("{}{}", &base[..s], &base[e..])
        };
        let _ = parse_problem(&mutated);
    }
}
