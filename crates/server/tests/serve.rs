//! End-to-end serving tests: real sockets, a real worker pool, and the
//! actual planner behind them. Every test binds an ephemeral port and
//! tears the server down before asserting the join result.

use sekitei_model::LevelScenario;
use sekitei_planner::PlannerConfig;
use sekitei_server::{
    request_plan, request_shutdown, request_stats, ClientError, Connection, Priority, ServedVia,
    Server, ServerConfig, ShutdownHandle,
};
use sekitei_topology::scenarios;
use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::Duration;

fn start(cfg: ServerConfig) -> (SocketAddr, ShutdownHandle, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

fn small_cfg() -> ServerConfig {
    ServerConfig { workers: 2, ..ServerConfig::default() }
}

#[test]
fn tiny_b_roundtrips_to_a_seven_action_plan() {
    let (addr, _, join) = start(small_cfg());
    let (outcome, via) = request_plan(addr, &scenarios::tiny(LevelScenario::B)).unwrap();
    assert_eq!(via, ServedVia::Computed);
    let plan = outcome.plan.expect("Tiny/B is solvable");
    assert_eq!(plan.steps.len(), 7);
    assert!(!plan.degraded);
    assert!(plan.cost_lower_bound > 0.0);
    assert!(!outcome.stats.budget_exhausted);
    request_shutdown(addr).unwrap();
    join.join().unwrap().unwrap();
}

#[test]
fn warm_repeat_is_a_cache_hit_with_identical_outcome() {
    let (addr, _, join) = start(small_cfg());
    let mut conn = Connection::connect(addr).unwrap();
    let p = scenarios::tiny(LevelScenario::C);
    let (cold, via_cold) = conn.plan(&p).unwrap();
    let (warm, via_warm) = conn.plan(&p).unwrap();
    assert_eq!(via_cold, ServedVia::Computed);
    assert_eq!(via_warm, ServedVia::Cache, "identical bytes must hit the outcome tier");
    assert_eq!(cold, warm, "cached outcome must be byte-identical");
    let stats = conn.stats().unwrap();
    assert_eq!(stats.served, 2);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);
    request_shutdown(addr).unwrap();
    join.join().unwrap().unwrap();
}

#[test]
fn serves_64_concurrent_requests_without_rejections() {
    let (addr, _, join) = start(ServerConfig::default());
    let solvable = [LevelScenario::B, LevelScenario::C, LevelScenario::D, LevelScenario::E];
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..64)
            .map(|i| {
                let sc = solvable[i % solvable.len()];
                s.spawn(move || {
                    let p = if i % 2 == 0 { scenarios::tiny(sc) } else { scenarios::small(sc) };
                    request_plan(addr, &p)
                })
            })
            .collect();
        for h in handles {
            let (outcome, _) = h.join().unwrap().expect("no request may fail under cap 128");
            assert!(outcome.plan.is_some());
        }
    });
    let stats = request_stats(addr).unwrap();
    assert_eq!(stats.served, 64);
    assert_eq!(stats.rejected, 0);
    // 64 requests over 8 distinct problems: at least the repeats must hit
    assert!(stats.cache_hits + stats.task_cache_hits >= 56, "stats: {stats}");
    request_shutdown(addr).unwrap();
    join.join().unwrap().unwrap();
}

#[test]
fn budget_exhausted_outcome_serves_warm_from_cache() {
    // node- and reject-budget exhaustion is deterministic, so the outcome
    // caches and the warm repeat is a byte-identical hit
    let cfg = ServerConfig {
        workers: 1,
        planner: PlannerConfig { max_nodes: 500, degrade: false, ..PlannerConfig::default() },
        ..ServerConfig::default()
    };
    let (addr, _, join) = start(cfg);
    let mut conn = Connection::connect(addr).unwrap();
    let p = scenarios::small(LevelScenario::A);
    let (cold, via_cold) = conn.plan(&p).unwrap();
    assert_eq!(via_cold, ServedVia::Computed);
    assert!(cold.stats.budget_exhausted, "Small/A must exhaust a 500-node budget");
    assert!(!cold.stats.deadline_hit);
    let (warm, via_warm) = conn.plan(&p).unwrap();
    assert!(via_warm.is_warm(), "budget-exhausted outcomes must hit the cache");
    assert_eq!(cold, warm, "cached outcome must be byte-identical");
    request_shutdown(addr).unwrap();
    join.join().unwrap().unwrap();
}

#[test]
fn deadline_tripped_outcome_is_never_cached() {
    // a 1 ms deadline trips on the wall clock, which must keep the
    // outcome out of the cache — the repeat is a fresh (cold) run
    let cfg = ServerConfig {
        workers: 1,
        planner: PlannerConfig {
            deadline: Some(Duration::from_millis(1)),
            degrade: false,
            ..PlannerConfig::default()
        },
        ..ServerConfig::default()
    };
    let (addr, _, join) = start(cfg);
    let mut conn = Connection::connect(addr).unwrap();
    let p = scenarios::large(LevelScenario::A);
    let (cold, via_cold) = conn.plan(&p).unwrap();
    assert_eq!(via_cold, ServedVia::Computed);
    assert!(cold.stats.deadline_hit, "Large/A cannot finish in 1ms");
    let (_, via_warm) = conn.plan(&p).unwrap();
    assert!(!via_warm.is_warm(), "deadline-tripped outcomes must never replay from cache");
    request_shutdown(addr).unwrap();
    join.join().unwrap().unwrap();
}

// debug builds search Large/A too slowly to surface even one rejected
// candidate inside the deadline, leaving degradation nothing to ship
#[cfg_attr(debug_assertions, ignore = "release-only deadline-timing test")]
#[test]
fn deadline_tripped_large_a_degrades_instead_of_erroring() {
    let cfg = ServerConfig {
        workers: 1,
        planner: PlannerConfig {
            deadline: Some(Duration::from_millis(600)),
            degrade: true,
            ..PlannerConfig::default()
        },
        ..ServerConfig::default()
    };
    let (addr, _, join) = start(cfg);
    let (outcome, _) = request_plan(addr, &scenarios::large(LevelScenario::A)).unwrap();
    assert!(outcome.stats.deadline_hit, "Large/A cannot finish in 600ms");
    assert!(outcome.stats.budget_exhausted);
    let plan = outcome.plan.expect("degradation must ship a plan, not an error");
    assert!(plan.degraded);
    assert!(!plan.steps.is_empty());
    assert!(outcome.best_bound.is_some(), "tripped search must report its bound");
    let stats = request_stats(addr).unwrap();
    assert_eq!(stats.degraded, 1);
    request_shutdown(addr).unwrap();
    join.join().unwrap().unwrap();
}

#[test]
fn zero_queue_cap_rejects_every_request() {
    let (addr, handle, join) = start(ServerConfig { queue_cap: 0, ..small_cfg() });
    for _ in 0..3 {
        match request_plan(addr, &scenarios::tiny(LevelScenario::B)) {
            Err(ClientError::Rejected(_)) => {}
            other => panic!("expected admission rejection, got {other:?}"),
        }
    }
    // the shutdown connection is rejected too — stop via the handle
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn malformed_problem_bytes_get_an_error_response() {
    let (addr, _, join) = start(small_cfg());
    let mut conn = Connection::connect(addr).unwrap();
    match conn.plan_bytes(b"not a SKT1 payload") {
        Err(ClientError::Server(msg)) => assert!(msg.contains("wire"), "msg: {msg}"),
        other => panic!("expected a server-side decode error, got {other:?}"),
    }
    // the connection survives a bad request and still serves good ones
    let (outcome, _) = conn.plan(&scenarios::tiny(LevelScenario::D)).unwrap();
    assert!(outcome.plan.is_some());
    request_shutdown(addr).unwrap();
    join.join().unwrap().unwrap();
}

#[test]
fn shutdown_handle_stops_an_idle_server() {
    let (_, handle, join) = start(small_cfg());
    assert!(!handle.is_shutdown());
    handle.shutdown();
    assert!(handle.is_shutdown());
    join.join().unwrap().unwrap();
}

#[test]
fn concurrent_identical_requests_coalesce_onto_one_search() {
    // Large/A under a 750ms deadline holds the leader in the search long
    // enough for the other three connections to join its waiter list:
    // exactly one search runs (one cache miss), three answers coalesce
    let cfg = ServerConfig {
        workers: 4,
        planner: PlannerConfig {
            deadline: Some(Duration::from_millis(750)),
            degrade: false,
            ..PlannerConfig::default()
        },
        ..ServerConfig::default()
    };
    let (addr, _, join) = start(cfg);
    let p = scenarios::large(LevelScenario::A);
    let barrier = std::sync::Barrier::new(4);
    let vias: Vec<ServedVia> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (p, barrier) = (&p, &barrier);
                s.spawn(move || {
                    let mut conn = Connection::connect(addr).unwrap();
                    barrier.wait();
                    let (_, via) = conn.plan(p).unwrap();
                    via
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let coalesced = vias.iter().filter(|v| **v == ServedVia::Coalesced).count();
    let computed = vias.iter().filter(|v| **v == ServedVia::Computed).count();
    assert_eq!(computed, 1, "exactly one leader computes: {vias:?}");
    assert_eq!(coalesced, 3, "the other three coalesce: {vias:?}");
    let stats = request_stats(addr).unwrap();
    assert_eq!(stats.cache_misses, 1, "one search for four requests");
    assert_eq!(stats.coalesced, 3);
    assert_eq!(stats.served, 4);
    request_shutdown(addr).unwrap();
    join.join().unwrap().unwrap();
}

#[test]
fn low_priority_sheds_first_under_queue_pressure() {
    // one worker, queue cap 4 → the Low shed threshold is 2. The worker
    // is busy with the active connection, so two extra idle connections
    // sit in the queue; once the depth gauge reads 2, a Low request on
    // the active connection is shed while High and Normal still serve.
    let (addr, _, join) = start(ServerConfig { workers: 1, queue_cap: 4, ..small_cfg() });
    let mut active = Connection::connect(addr).unwrap();
    // a request proves the worker owns this connection before the idlers
    let (_, via) = active.plan(&scenarios::tiny(LevelScenario::B)).unwrap();
    assert_eq!(via, ServedVia::Computed);

    let _idle_a = Connection::connect(addr).unwrap();
    let _idle_b = Connection::connect(addr).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let parsed = sekitei_obs::parse_exposition(&active.metrics().unwrap()).unwrap();
        if parsed.gauges.get("queue_depth").copied().unwrap_or(0) >= 2 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "queue never reached depth 2");
        std::thread::sleep(Duration::from_millis(10));
    }

    let bytes = sekitei_spec::encode(&scenarios::tiny(LevelScenario::C));
    match active.plan_bytes_traced(&bytes, 0, false, Priority::Low) {
        Err(ClientError::Rejected(msg)) => assert!(msg.contains("shed"), "msg: {msg}"),
        other => panic!("low priority must shed under pressure, got {other:?}"),
    }
    // the same request at High (never shed) and Normal (threshold 4 > 2)
    // priority still serves on the same connection
    active.plan_bytes_traced(&bytes, 0, false, Priority::High).unwrap();
    active.plan_bytes_traced(&bytes, 0, false, Priority::Normal).unwrap();

    let stats = active.stats().unwrap();
    assert_eq!(stats.queue_shed, 1, "stats: {stats}");
    let parsed = sekitei_obs::parse_exposition(&active.metrics().unwrap()).unwrap();
    assert_eq!(parsed.counters.get("queue_shed_low").copied(), Some(1));
    assert_eq!(parsed.counters.get("queue_shed_normal").copied(), Some(0));
    drop(active);
    request_shutdown(addr).unwrap();
    join.join().unwrap().unwrap();
}

#[test]
fn persisted_cache_survives_restart_as_warm_hits() {
    let mut path = std::env::temp_dir();
    path.push(format!("sekitei_serve_persist_{}.sks", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let cfg = ServerConfig { cache_file: Some(path.clone()), ..small_cfg() };

    let (addr, _, join) = start(cfg.clone());
    let p = scenarios::tiny(LevelScenario::C);
    let (cold, via) = request_plan(addr, &p).unwrap();
    assert_eq!(via, ServedVia::Computed);
    request_shutdown(addr).unwrap();
    join.join().unwrap().unwrap();

    // a brand-new process-equivalent: same cache file, same config — the
    // very first request must already be warm
    let (addr, _, join) = start(cfg);
    let mut conn = Connection::connect(addr).unwrap();
    let (warm, via) = conn.plan(&p).unwrap();
    assert_eq!(via, ServedVia::Cache, "restart must serve from the persisted cache");
    assert_eq!(cold, warm, "replayed outcome must be byte-identical");
    let stats = conn.stats().unwrap();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 0, "no recompute after restart");
    drop(conn);
    request_shutdown(addr).unwrap();
    join.join().unwrap().unwrap();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn stale_cache_file_cold_starts_after_config_change() {
    let mut path = std::env::temp_dir();
    path.push(format!("sekitei_serve_stale_{}.sks", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let (addr, _, join) = start(ServerConfig { cache_file: Some(path.clone()), ..small_cfg() });
    let p = scenarios::tiny(LevelScenario::D);
    request_plan(addr, &p).unwrap();
    request_shutdown(addr).unwrap();
    join.join().unwrap().unwrap();

    // restart with a different planner config: the fingerprint no longer
    // matches, so nothing may replay — a stale answer would be wrong
    let cfg = ServerConfig {
        cache_file: Some(path.clone()),
        planner: PlannerConfig { max_nodes: 77_777, ..PlannerConfig::default() },
        ..small_cfg()
    };
    let (addr, _, join) = start(cfg);
    let mut conn = Connection::connect(addr).unwrap();
    let (_, via) = conn.plan(&p).unwrap();
    assert_eq!(via, ServedVia::Computed, "config change must invalidate the snapshot");
    let stats = conn.stats().unwrap();
    assert_eq!(stats.cache_misses, 1);
    drop(conn);
    request_shutdown(addr).unwrap();
    join.join().unwrap().unwrap();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn sharded_server_aggregates_stats_and_flight_across_shards() {
    let (addr, _, join) = start(ServerConfig { workers: 2, shards: 2, ..ServerConfig::default() });
    // one-shot requests: each opens its own connection, so the acceptor
    // round-robins them across both shards
    let solvable = [LevelScenario::B, LevelScenario::C, LevelScenario::D, LevelScenario::E];
    for sc in solvable {
        let (outcome, _) = request_plan(addr, &scenarios::tiny(sc)).unwrap();
        assert!(outcome.plan.is_some());
    }
    // repeats hit whichever stripe owns the fingerprint, regardless of
    // which shard's queue the new connection landed in
    for sc in solvable {
        let (_, via) = request_plan(addr, &scenarios::tiny(sc)).unwrap();
        assert_eq!(via, ServedVia::Cache, "stripe ownership is fingerprint-based");
    }
    let stats = request_stats(addr).unwrap();
    assert_eq!(stats.served, 8, "merged stats cover both shards: {stats}");
    assert_eq!(stats.cache_hits, 4);
    assert_eq!(stats.cache_misses, 4);

    let dump = sekitei_server::request_flight_recorder(addr).unwrap();
    let parsed = sekitei_server::parse_dump(&dump).unwrap();
    assert_eq!(parsed.records.len(), 8, "merged flight dump covers both shards");
    let seqs: Vec<u64> = parsed.records.iter().map(|r| r.seq).collect();
    let mut sorted = seqs.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(seqs, sorted, "records interleave in global sequence order");
    request_shutdown(addr).unwrap();
    join.join().unwrap().unwrap();
}
