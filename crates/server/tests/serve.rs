//! End-to-end serving tests: real sockets, a real worker pool, and the
//! actual planner behind them. Every test binds an ephemeral port and
//! tears the server down before asserting the join result.

use sekitei_model::LevelScenario;
use sekitei_planner::PlannerConfig;
use sekitei_server::{
    request_plan, request_shutdown, request_stats, ClientError, Connection, Server, ServerConfig,
    ShutdownHandle,
};
use sekitei_topology::scenarios;
use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::Duration;

fn start(cfg: ServerConfig) -> (SocketAddr, ShutdownHandle, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

fn small_cfg() -> ServerConfig {
    ServerConfig { workers: 2, ..ServerConfig::default() }
}

#[test]
fn tiny_b_roundtrips_to_a_seven_action_plan() {
    let (addr, _, join) = start(small_cfg());
    let (outcome, cache_hit) = request_plan(addr, &scenarios::tiny(LevelScenario::B)).unwrap();
    assert!(!cache_hit);
    let plan = outcome.plan.expect("Tiny/B is solvable");
    assert_eq!(plan.steps.len(), 7);
    assert!(!plan.degraded);
    assert!(plan.cost_lower_bound > 0.0);
    assert!(!outcome.stats.budget_exhausted);
    request_shutdown(addr).unwrap();
    join.join().unwrap().unwrap();
}

#[test]
fn warm_repeat_is_a_cache_hit_with_identical_outcome() {
    let (addr, _, join) = start(small_cfg());
    let mut conn = Connection::connect(addr).unwrap();
    let p = scenarios::tiny(LevelScenario::C);
    let (cold, hit_cold) = conn.plan(&p).unwrap();
    let (warm, hit_warm) = conn.plan(&p).unwrap();
    assert!(!hit_cold);
    assert!(hit_warm, "identical bytes must hit the outcome tier");
    assert_eq!(cold, warm, "cached outcome must be byte-identical");
    let stats = conn.stats().unwrap();
    assert_eq!(stats.served, 2);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);
    request_shutdown(addr).unwrap();
    join.join().unwrap().unwrap();
}

#[test]
fn serves_64_concurrent_requests_without_rejections() {
    let (addr, _, join) = start(ServerConfig::default());
    let solvable = [LevelScenario::B, LevelScenario::C, LevelScenario::D, LevelScenario::E];
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..64)
            .map(|i| {
                let sc = solvable[i % solvable.len()];
                s.spawn(move || {
                    let p = if i % 2 == 0 { scenarios::tiny(sc) } else { scenarios::small(sc) };
                    request_plan(addr, &p)
                })
            })
            .collect();
        for h in handles {
            let (outcome, _) = h.join().unwrap().expect("no request may fail under cap 128");
            assert!(outcome.plan.is_some());
        }
    });
    let stats = request_stats(addr).unwrap();
    assert_eq!(stats.served, 64);
    assert_eq!(stats.rejected, 0);
    // 64 requests over 8 distinct problems: at least the repeats must hit
    assert!(stats.cache_hits + stats.task_cache_hits >= 56, "stats: {stats}");
    request_shutdown(addr).unwrap();
    join.join().unwrap().unwrap();
}

#[test]
fn budget_exhausted_outcome_serves_warm_from_cache() {
    // node- and reject-budget exhaustion is deterministic, so the outcome
    // caches and the warm repeat is a byte-identical hit
    let cfg = ServerConfig {
        workers: 1,
        planner: PlannerConfig { max_nodes: 500, degrade: false, ..PlannerConfig::default() },
        ..ServerConfig::default()
    };
    let (addr, _, join) = start(cfg);
    let mut conn = Connection::connect(addr).unwrap();
    let p = scenarios::small(LevelScenario::A);
    let (cold, hit_cold) = conn.plan(&p).unwrap();
    assert!(!hit_cold);
    assert!(cold.stats.budget_exhausted, "Small/A must exhaust a 500-node budget");
    assert!(!cold.stats.deadline_hit);
    let (warm, hit_warm) = conn.plan(&p).unwrap();
    assert!(hit_warm, "budget-exhausted outcomes must hit the cache");
    assert_eq!(cold, warm, "cached outcome must be byte-identical");
    request_shutdown(addr).unwrap();
    join.join().unwrap().unwrap();
}

#[test]
fn deadline_tripped_outcome_is_never_cached() {
    // a 1 ms deadline trips on the wall clock, which must keep the
    // outcome out of the cache — the repeat is a fresh (cold) run
    let cfg = ServerConfig {
        workers: 1,
        planner: PlannerConfig {
            deadline: Some(Duration::from_millis(1)),
            degrade: false,
            ..PlannerConfig::default()
        },
        ..ServerConfig::default()
    };
    let (addr, _, join) = start(cfg);
    let mut conn = Connection::connect(addr).unwrap();
    let p = scenarios::large(LevelScenario::A);
    let (cold, hit_cold) = conn.plan(&p).unwrap();
    assert!(!hit_cold);
    assert!(cold.stats.deadline_hit, "Large/A cannot finish in 1ms");
    let (_, hit_warm) = conn.plan(&p).unwrap();
    assert!(!hit_warm, "deadline-tripped outcomes must never replay from cache");
    request_shutdown(addr).unwrap();
    join.join().unwrap().unwrap();
}

// debug builds search Large/A too slowly to surface even one rejected
// candidate inside the deadline, leaving degradation nothing to ship
#[cfg_attr(debug_assertions, ignore = "release-only deadline-timing test")]
#[test]
fn deadline_tripped_large_a_degrades_instead_of_erroring() {
    let cfg = ServerConfig {
        workers: 1,
        planner: PlannerConfig {
            deadline: Some(Duration::from_millis(600)),
            degrade: true,
            ..PlannerConfig::default()
        },
        ..ServerConfig::default()
    };
    let (addr, _, join) = start(cfg);
    let (outcome, _) = request_plan(addr, &scenarios::large(LevelScenario::A)).unwrap();
    assert!(outcome.stats.deadline_hit, "Large/A cannot finish in 600ms");
    assert!(outcome.stats.budget_exhausted);
    let plan = outcome.plan.expect("degradation must ship a plan, not an error");
    assert!(plan.degraded);
    assert!(!plan.steps.is_empty());
    assert!(outcome.best_bound.is_some(), "tripped search must report its bound");
    let stats = request_stats(addr).unwrap();
    assert_eq!(stats.degraded, 1);
    request_shutdown(addr).unwrap();
    join.join().unwrap().unwrap();
}

#[test]
fn zero_queue_cap_rejects_every_request() {
    let (addr, handle, join) = start(ServerConfig { queue_cap: 0, ..small_cfg() });
    for _ in 0..3 {
        match request_plan(addr, &scenarios::tiny(LevelScenario::B)) {
            Err(ClientError::Rejected(_)) => {}
            other => panic!("expected admission rejection, got {other:?}"),
        }
    }
    // the shutdown connection is rejected too — stop via the handle
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn malformed_problem_bytes_get_an_error_response() {
    let (addr, _, join) = start(small_cfg());
    let mut conn = Connection::connect(addr).unwrap();
    match conn.plan_bytes(b"not a SKT1 payload") {
        Err(ClientError::Server(msg)) => assert!(msg.contains("wire"), "msg: {msg}"),
        other => panic!("expected a server-side decode error, got {other:?}"),
    }
    // the connection survives a bad request and still serves good ones
    let (outcome, _) = conn.plan(&scenarios::tiny(LevelScenario::D)).unwrap();
    assert!(outcome.plan.is_some());
    request_shutdown(addr).unwrap();
    join.join().unwrap().unwrap();
}

#[test]
fn shutdown_handle_stops_an_idle_server() {
    let (_, handle, join) = start(small_cfg());
    assert!(!handle.is_shutdown());
    handle.shutdown();
    assert!(handle.is_shutdown());
    join.join().unwrap().unwrap();
}
