//! Loadgen and telemetry-plane integration tests: real sockets, the
//! real worker pool, and the seeded generator on top.

use sekitei_server::{
    decode_response, loadgen, parse_dump, read_frame, request_flight_recorder, request_metrics,
    request_shutdown, write_frame, LoadgenConfig, Response, ScenarioItem, Server, ServerConfig,
    ShutdownHandle,
};
use sekitei_topology::scenarios::{self, NetSize};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;

fn start(cfg: ServerConfig) -> (SocketAddr, ShutdownHandle, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

fn tiny_corpus() -> Vec<ScenarioItem> {
    use sekitei_model::LevelScenario::*;
    [A, B, C, D, E]
        .into_iter()
        .map(|sc| ScenarioItem::new(format!("Tiny/{sc:?}"), scenarios::problem(NetSize::Tiny, sc)))
        .collect()
}

#[test]
fn same_seed_yields_byte_identical_deterministic_report() {
    let (addr, _, join) = start(ServerConfig { workers: 2, ..ServerConfig::default() });
    let corpus = tiny_corpus();
    let cfg = LoadgenConfig {
        requests: 200,
        connections: 2,
        seed: 0xFEED_F00D,
        verify_every: 25,
        ..LoadgenConfig::default()
    };
    let first = loadgen::run(&cfg, addr, &corpus).expect("first run");
    let second = loadgen::run(&cfg, addr, &corpus).expect("second run");
    assert_eq!(first.completed, 200);
    assert_eq!(first.errors, 0);
    assert!(first.verified.0 > 0, "sampled subset must be non-empty");
    assert_eq!(first.verified.2, 0, "no certificate may fail verification");
    assert_eq!(
        first.deterministic, second.deterministic,
        "same seed + config must render byte-identical deterministic reports"
    );
    // second run hits the warmed outcome cache for every repeated key,
    // yet content classes stay the class of the cached bytes
    assert_eq!(first.class_counts, second.class_counts);
    request_shutdown(addr).expect("shutdown");
    join.join().unwrap().expect("server exits cleanly");
}

#[test]
fn malformed_control_frames_answer_error_and_keep_serving() {
    let (addr, _, join) = start(ServerConfig { workers: 1, ..ServerConfig::default() });
    let mut stream = TcpStream::connect(addr).expect("connect");

    // unknown tag
    write_frame(&mut stream, &[0x77, 1, 2, 3]).expect("write");
    let resp = decode_response(&read_frame(&mut stream).expect("read")).expect("decode");
    assert!(matches!(resp, Response::Error(_)), "unknown tag answers Error, got {resp:?}");

    // trailing bytes on a control request (Stats = tag 1)
    write_frame(&mut stream, &[1, 0xAA]).expect("write");
    let resp = decode_response(&read_frame(&mut stream).expect("read")).expect("decode");
    assert!(matches!(resp, Response::Error(_)), "trailing bytes answer Error, got {resp:?}");

    // truncated plan header (tag 0 with no trace id / flags)
    write_frame(&mut stream, &[0]).expect("write");
    let resp = decode_response(&read_frame(&mut stream).expect("read")).expect("decode");
    assert!(matches!(resp, Response::Error(_)), "short plan header answers Error, got {resp:?}");

    // the same connection still serves real traffic afterwards
    write_frame(&mut stream, &[1]).expect("write");
    let resp = decode_response(&read_frame(&mut stream).expect("read")).expect("decode");
    assert!(matches!(resp, Response::Stats(_)), "valid stats after garbage, got {resp:?}");
    drop(stream);

    // and the server as a whole still answers fresh connections
    let corpus = tiny_corpus();
    let cfg = LoadgenConfig { requests: 10, connections: 1, ..LoadgenConfig::default() };
    let report = loadgen::run(&cfg, addr, &corpus).expect("loadgen after garbage");
    assert_eq!(report.completed, 10);
    request_shutdown(addr).expect("shutdown");
    join.join().unwrap().expect("server exits cleanly");
}

#[test]
fn flight_exemplars_resolve_to_recorded_requests() {
    let (addr, _, join) = start(ServerConfig { workers: 2, ..ServerConfig::default() });
    let corpus = tiny_corpus();
    let cfg = LoadgenConfig { requests: 120, connections: 2, seed: 7, ..LoadgenConfig::default() };
    loadgen::run(&cfg, addr, &corpus).expect("loadgen");

    let text = request_flight_recorder(addr).expect("flight dump");
    // parse_dump enforces the acceptance invariant: every latency-bucket
    // exemplar carries a trace id resolvable to a record in the dump
    let dump = parse_dump(&text).expect("dump validates");
    assert_eq!(dump.records.len(), 120);
    assert!(!dump.exemplars.is_empty());
    assert!(dump.records.iter().all(|r| r.trace_id != 0), "loadgen assigns nonzero trace ids");
    for ex in &dump.exemplars {
        let hit = dump
            .records
            .iter()
            .find(|r| r.trace_id == ex.trace_id && r.latency_us == ex.latency_us)
            .expect("exemplar resolves to a record");
        assert!((ex.lo..ex.hi).contains(&hit.latency_us));
    }

    request_shutdown(addr).expect("shutdown");
    join.join().unwrap().expect("server exits cleanly");
}

#[test]
fn metrics_scrape_reflects_loadgen_traffic() {
    let (addr, _, join) = start(ServerConfig { workers: 2, ..ServerConfig::default() });
    let corpus = tiny_corpus();
    let cfg = LoadgenConfig { requests: 60, connections: 2, seed: 3, ..LoadgenConfig::default() };
    let report = loadgen::run(&cfg, addr, &corpus).expect("loadgen");

    let text = request_metrics(addr).expect("metrics scrape");
    let parsed = sekitei_obs::parse_exposition(&text).expect("exposition validates");
    assert_eq!(parsed.counters["served"], report.completed);
    assert_eq!(parsed.histograms["latency_us"].count, report.completed);
    let class_total: u64 = ["exact", "degraded", "cached", "budget_exhausted", "deadline_hit"]
        .iter()
        .map(|c| parsed.counters[&format!("class_{c}")])
        .sum::<u64>()
        + parsed.counters["class_error"];
    assert_eq!(class_total, report.completed, "class counters partition served requests");

    request_shutdown(addr).expect("shutdown");
    join.join().unwrap().expect("server exits cleanly");
}
