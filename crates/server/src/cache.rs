//! Content-addressed caches for the serving path.
//!
//! Two tiers, both keyed by the FNV-1a hash of the *encoded* problem bytes
//! (the `SKT1` payload the client sent — hashing before decoding means a
//! repeat request is recognized without any parsing work):
//!
//! 1. **compiled-task tier** — the decoded problem plus its compiled
//!    [`PlanningTask`]; a hit skips grounding and leveling and goes
//!    straight to search.
//! 2. **outcome tier** — the fully encoded response payload of any run
//!    the wall clock didn't cut short; a hit skips everything. Node- and
//!    reject-budget exhaustion is a deterministic function of the problem
//!    and config, so those outcomes cache and replay soundly — only
//!    deadline-tripped outcomes are timing-dependent and never cached.
//!
//! Both tiers are FIFO-bounded: small, predictable memory and no
//! scan-resistance machinery a planning workload doesn't need.

use std::collections::{HashMap, VecDeque};

/// FNV-1a 64-bit content hash — deterministic across runs and platforms,
/// no dependencies, and fast enough to disappear next to a TCP round-trip.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A FIFO-bounded hash map. Inserting past capacity evicts the oldest
/// entry; re-inserting an existing key refreshes its value but not its
/// eviction slot.
#[derive(Debug)]
pub struct BoundedCache<V> {
    cap: usize,
    map: HashMap<u64, V>,
    order: VecDeque<u64>,
}

impl<V: Clone> BoundedCache<V> {
    /// An empty cache holding at most `cap` entries (`cap = 0` disables
    /// caching entirely).
    pub fn new(cap: usize) -> Self {
        BoundedCache { cap, map: HashMap::new(), order: VecDeque::new() }
    }

    /// Look up a key.
    pub fn get(&self, key: u64) -> Option<V> {
        self.map.get(&key).cloned()
    }

    /// Insert, evicting the oldest entry if full.
    pub fn insert(&mut self, key: u64, value: V) {
        if self.cap == 0 {
            return;
        }
        if self.map.insert(key, value).is_some() {
            return; // refreshed in place; eviction order unchanged
        }
        self.order.push_back(key);
        while self.map.len() > self.cap {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_is_stable_and_discriminating() {
        assert_eq!(content_hash(b""), 0xcbf29ce484222325);
        assert_eq!(content_hash(b"sekitei"), content_hash(b"sekitei"));
        assert_ne!(content_hash(b"sekitei"), content_hash(b"sekitej"));
    }

    #[test]
    fn fifo_eviction() {
        let mut c = BoundedCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        c.insert(3, "c"); // evicts 1
        assert_eq!(c.len(), 2);
        assert!(c.get(1).is_none());
        assert_eq!(c.get(2), Some("b"));
        assert_eq!(c.get(3), Some("c"));
    }

    #[test]
    fn reinsert_refreshes_value_without_growth() {
        let mut c = BoundedCache::new(2);
        c.insert(1, "a");
        c.insert(1, "a2");
        c.insert(2, "b");
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1), Some("a2"));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c: BoundedCache<&str> = BoundedCache::new(0);
        c.insert(1, "a");
        assert!(c.is_empty());
        assert!(c.get(1).is_none());
    }
}
