//! Content-addressed caches for the serving path.
//!
//! Two tiers, both keyed by the FNV-1a hash of the *encoded* problem bytes
//! (the `SKT1` payload the client sent — hashing before decoding means a
//! repeat request is recognized without any parsing work):
//!
//! 1. **compiled-task tier** — the decoded problem plus its compiled
//!    [`PlanningTask`]; a hit skips grounding and leveling and goes
//!    straight to search.
//! 2. **outcome tier** — the fully encoded response payload of any run
//!    the wall clock didn't cut short; a hit skips everything. Node- and
//!    reject-budget exhaustion is a deterministic function of the problem
//!    and config, so those outcomes cache and replay soundly — only
//!    deadline-tripped outcomes are timing-dependent and never cached.
//!
//! The compiled-task tier stays FIFO-bounded ([`BoundedCache`]): small,
//! predictable memory. The outcome tier uses CLOCK eviction
//! ([`ClockCache`]) — a one-bit approximation of LRU whose second-chance
//! sweep keeps hot Zipf heads resident under capacity pressure, which is
//! what the measured hit-rate-vs-capacity curve in `BENCH_server.json`
//! exercises.

use std::collections::{HashMap, VecDeque};

/// FNV-1a 64-bit content hash — deterministic across runs and platforms,
/// no dependencies, and fast enough to disappear next to a TCP round-trip.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A FIFO-bounded hash map. Inserting past capacity evicts the oldest
/// entry; re-inserting an existing key refreshes its value but not its
/// eviction slot.
#[derive(Debug)]
pub struct BoundedCache<V> {
    cap: usize,
    map: HashMap<u64, V>,
    order: VecDeque<u64>,
}

impl<V: Clone> BoundedCache<V> {
    /// An empty cache holding at most `cap` entries (`cap = 0` disables
    /// caching entirely).
    pub fn new(cap: usize) -> Self {
        BoundedCache { cap, map: HashMap::new(), order: VecDeque::new() }
    }

    /// Look up a key.
    pub fn get(&self, key: u64) -> Option<V> {
        self.map.get(&key).cloned()
    }

    /// Insert, evicting the oldest entry if full.
    pub fn insert(&mut self, key: u64, value: V) {
        if self.cap == 0 {
            return;
        }
        if self.map.insert(key, value).is_some() {
            return; // refreshed in place; eviction order unchanged
        }
        self.order.push_back(key);
        while self.map.len() > self.cap {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// One slot of a [`ClockCache`]: key, value, and the reference bit the
/// sweep hand clears.
#[derive(Debug)]
struct ClockSlot<V> {
    key: u64,
    value: V,
    referenced: bool,
}

/// A CLOCK-bounded hash map: one-bit LRU approximation. `get` sets the
/// slot's reference bit; inserting past capacity sweeps the hand around
/// the ring, clearing reference bits, and evicts the first slot found
/// unreferenced (every entry gets a second chance). Fresh inserts start
/// *unreferenced* so a burst of one-shot keys cannot flush the recently
/// used set.
#[derive(Debug)]
pub struct ClockCache<V> {
    cap: usize,
    slots: Vec<ClockSlot<V>>,
    index: HashMap<u64, usize>,
    hand: usize,
}

impl<V: Clone> ClockCache<V> {
    /// An empty cache holding at most `cap` entries (`cap = 0` disables
    /// caching entirely).
    pub fn new(cap: usize) -> Self {
        ClockCache { cap, slots: Vec::new(), index: HashMap::new(), hand: 0 }
    }

    /// Look up a key, marking it recently used on a hit.
    pub fn get(&mut self, key: u64) -> Option<V> {
        let &slot = self.index.get(&key)?;
        self.slots[slot].referenced = true;
        Some(self.slots[slot].value.clone())
    }

    /// Insert, evicting the hand's first unreferenced slot if full.
    /// Re-inserting an existing key refreshes its value and marks it
    /// recently used.
    pub fn insert(&mut self, key: u64, value: V) {
        if self.cap == 0 {
            return;
        }
        if let Some(&slot) = self.index.get(&key) {
            self.slots[slot].value = value;
            self.slots[slot].referenced = true;
            return;
        }
        if self.slots.len() < self.cap {
            self.index.insert(key, self.slots.len());
            self.slots.push(ClockSlot { key, value, referenced: false });
            return;
        }
        // sweep: clear reference bits until an unreferenced victim turns
        // up; bounded by 2·cap (one full lap clears every bit)
        loop {
            let slot = &mut self.slots[self.hand];
            if slot.referenced {
                slot.referenced = false;
                self.hand = (self.hand + 1) % self.cap;
                continue;
            }
            self.index.remove(&slot.key);
            self.index.insert(key, self.hand);
            *slot = ClockSlot { key, value, referenced: false };
            self.hand = (self.hand + 1) % self.cap;
            return;
        }
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Visit every resident entry (snapshot persistence walks this).
    pub fn for_each(&self, mut f: impl FnMut(u64, &V)) {
        for slot in &self.slots {
            f(slot.key, &slot.value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_is_stable_and_discriminating() {
        assert_eq!(content_hash(b""), 0xcbf29ce484222325);
        assert_eq!(content_hash(b"sekitei"), content_hash(b"sekitei"));
        assert_ne!(content_hash(b"sekitei"), content_hash(b"sekitej"));
    }

    #[test]
    fn fifo_eviction() {
        let mut c = BoundedCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        c.insert(3, "c"); // evicts 1
        assert_eq!(c.len(), 2);
        assert!(c.get(1).is_none());
        assert_eq!(c.get(2), Some("b"));
        assert_eq!(c.get(3), Some("c"));
    }

    #[test]
    fn reinsert_refreshes_value_without_growth() {
        let mut c = BoundedCache::new(2);
        c.insert(1, "a");
        c.insert(1, "a2");
        c.insert(2, "b");
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1), Some("a2"));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c: BoundedCache<&str> = BoundedCache::new(0);
        c.insert(1, "a");
        assert!(c.is_empty());
        assert!(c.get(1).is_none());
    }

    #[test]
    fn clock_eviction_order_respects_reference_bits() {
        let mut c = ClockCache::new(3);
        c.insert(1, "a");
        c.insert(2, "b");
        c.insert(3, "c");
        // touch 1: its reference bit protects it through the next sweep
        assert_eq!(c.get(1), Some("a"));
        c.insert(4, "d");
        // hand started at 0: slot 1 was referenced (bit cleared, spared),
        // slot 2 was not → evicted; 1 survives because it was touched
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(1), Some("a"));
        assert!(c.get(2).is_none(), "untouched key evicted first");
        assert_eq!(c.get(3), Some("c"));
        assert_eq!(c.get(4), Some("d"));
        // next insert: hand sits past 2's old slot; 3 and 4 were touched
        // by the asserts above, 1's bit was cleared by the first sweep
        // and re-set by get — sweep clears all three, laps, evicts 3
        c.insert(5, "e");
        assert_eq!(c.len(), 3);
        let survivors: Vec<_> = [1, 3, 4, 5].iter().filter(|&&k| c.get(k).is_some()).collect();
        assert_eq!(survivors.len(), 3);
        assert_eq!(c.get(5), Some("e"), "new entry resident after eviction");
    }

    #[test]
    fn clock_hot_key_survives_one_shot_scan() {
        // the scan-resistance property the Zipf mix relies on: a hot key
        // touched between inserts outlives a long parade of cold keys
        let mut c = ClockCache::new(4);
        c.insert(100, "hot");
        for k in 0..64 {
            assert_eq!(c.get(100), Some("hot"), "hot key evicted at k={k}");
            c.insert(k, "cold");
        }
        assert_eq!(c.get(100), Some("hot"));
    }

    #[test]
    fn clock_reinsert_refreshes_and_zero_cap_disables() {
        let mut c = ClockCache::new(2);
        c.insert(1, "a");
        c.insert(1, "a2");
        c.insert(2, "b");
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1), Some("a2"));

        let mut z: ClockCache<&str> = ClockCache::new(0);
        z.insert(1, "a");
        assert!(z.is_empty());
        assert!(z.get(1).is_none());

        let mut seen = Vec::new();
        c.for_each(|k, _| seen.push(k));
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2]);
    }
}
