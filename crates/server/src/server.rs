//! The serving loop, sharded: a nonblocking acceptor round-robins
//! connections across N shards, each shard owning its own bounded
//! connection queue, worker threads, stats, and flight-recorder ring —
//! no global lock anywhere on the hot path.
//!
//! The two-tier cache is partitioned into per-shard *stripes* by
//! fingerprint (`key % shards`), independent of which shard's queue a
//! connection landed in, so every request for the same problem meets the
//! same stripe. Each stripe also carries a single-flight table:
//! concurrent requests for one fingerprint elect a leader that runs the
//! search while the rest join a waiter list and receive the leader's
//! encoded `SKO1` bytes when it publishes — one search, N answers
//! (the `coalesced` facet in stats).
//!
//! Control requests (`Stats`, `Metrics`, `FlightRecorder`) aggregate
//! across shards: counters sum, histograms merge exactly
//! (`Histogram::merge`), flight rings interleave on a shared global
//! sequence counter — byte-for-byte indistinguishable from a single
//! unsharded server that saw the same traffic in the same order.
//!
//! Determinism argument: sharding moves *where* a request is handled,
//! never *what* it computes. Outcomes are pure functions of (problem
//! bytes, planner config); coalesced fan-out hands every joiner the
//! same encoded bytes the leader produced; and cached replays were
//! already byte replays. So per-request responses are byte-identical to
//! the unsharded server's for every schedule, and only the *timing*
//! facets (queue waits, latency histograms) vary run to run — exactly
//! as before.

use crate::cache::{content_hash, BoundedCache, ClockCache};
use crate::convert::outcome_to_wire;
use crate::flight::{merged_dump, CacheTier, FlightRecord, FlightRecorder, OutcomeClass};
use crate::persist::{config_fingerprint, open_snapshot, SnapshotAppender};
use crate::protocol::{
    decode_request, encode_response, frame_into, outcome_header, read_frame, write_frame, Priority,
    Request, Response, ServedVia,
};
use crate::stats::ServerStats;
use sekitei_compile::{compile, PlanningTask};
use sekitei_model::CppProblem;
use sekitei_planner::{Planner, PlannerConfig};
use sekitei_spec::{encode_outcome, WirePhase};
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the connection queues (`0` = one per
    /// available core). Raised to at least one per shard.
    pub workers: usize,
    /// Accept/worker shards. Each shard owns its own connection queue,
    /// workers, stats, flight ring, and cache stripe; `1` reproduces the
    /// unsharded server exactly.
    pub shards: usize,
    /// Admission control, per shard: connections beyond this many waiting
    /// in a shard's queue are turned away with a `Rejected` response.
    pub queue_cap: usize,
    /// Total entries per cache tier (compiled tasks and completed
    /// outcomes), split across shard stripes.
    pub cache_cap: usize,
    /// Planner configuration applied to every request. The serve defaults
    /// turn on a per-request deadline and graceful degradation — the two
    /// knobs that make an optimal-but-occasionally-explosive planner
    /// servable.
    pub planner: PlannerConfig,
    /// Flight-recorder capacity: the most recent this-many plan requests
    /// stay dumpable for tail-latency post-mortems (split across shards).
    pub flight_cap: usize,
    /// Append-only `SKS1` outcome-cache snapshot file. When set, computed
    /// cacheable outcomes are appended as they happen and replayed on the
    /// next start (after a config-fingerprint check), so a restart keeps
    /// its warm hit rate.
    pub cache_file: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            shards: 1,
            queue_cap: 128,
            cache_cap: 256,
            planner: PlannerConfig {
                deadline: Some(Duration::from_millis(2000)),
                degrade: true,
                ..PlannerConfig::default()
            },
            flight_cap: 4096,
            cache_file: None,
        }
    }
}

/// Flips the serving loop's stop flag; cloneable across threads.
#[derive(Debug, Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Ask the server to stop. Idempotent; the loop notices within a few
    /// milliseconds.
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// True once shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// A bound planning service. [`Server::run`] blocks the calling thread
/// until a shutdown request arrives (protocol `Shutdown` frame or
/// [`ShutdownHandle::shutdown`]).
#[derive(Debug)]
pub struct Server {
    cfg: ServerConfig,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
}

/// A completed outcome in the cache: the encoded `SKO1` bytes replayed on
/// a hit, plus the content class and search size so hits can be
/// flight-recorded and classified without decoding.
struct CachedOutcome {
    sko: Vec<u8>,
    class: OutcomeClass,
    rg_nodes: u64,
}

/// One accept/worker shard: its own connection queue, stats, and flight
/// ring. Workers are pinned to a shard; the acceptor round-robins
/// connections across shards.
struct ShardState {
    /// Accepted connections waiting for a worker, with their enqueue time
    /// (the queue-wait histogram measures accept → worker-pickup).
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    available: Condvar,
    stats: Arc<ServerStats>,
    flight: FlightRecorder,
}

/// One fingerprint-partitioned slice of the two-tier cache plus its
/// single-flight table. Chosen by `key % shards`, independent of the
/// connection's shard, so identical problems always meet the same
/// stripe no matter which queue carried them.
struct CacheStripe {
    tasks: Mutex<BoundedCache<Arc<(CppProblem, PlanningTask)>>>,
    outcomes: Mutex<ClockCache<Arc<CachedOutcome>>>,
    inflight: Mutex<HashMap<u64, Arc<InFlight>>>,
}

/// A search in progress: the leader publishes into `slot` and notifies;
/// joiners wait on `done`. The leader always publishes — success or
/// error — before removing the entry from the stripe's table, so no
/// joiner can miss the result.
#[derive(Default)]
struct InFlight {
    slot: Mutex<Option<Result<Arc<CachedOutcome>, String>>>,
    done: Condvar,
}

/// Everything the workers share, borrowed for the lifetime of the scope.
struct ServeState {
    shards: Vec<ShardState>,
    stripes: Vec<CacheStripe>,
    stop: Arc<AtomicBool>,
    planner: Planner,
    planner_cfg: PlannerConfig,
    persist: Option<SnapshotAppender>,
    queue_cap: usize,
}

impl ServeState {
    fn stripe(&self, key: u64) -> &CacheStripe {
        &self.stripes[(key % self.stripes.len() as u64) as usize]
    }

    fn notify_all_shards(&self) {
        for shard in &self.shards {
            shard.available.notify_all();
        }
    }
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port, then
    /// [`Server::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server { cfg, listener, stop: Arc::new(AtomicBool::new(false)) })
    }

    /// The bound socket address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops [`Server::run`] from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.stop))
    }

    /// Serve until shutdown. Workers run on scoped threads; returning
    /// means every worker has drained and exited.
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let n_shards = self.cfg.shards.max(1);
        let workers = if self.cfg.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.cfg.workers
        }
        .max(n_shards);

        let seq = Arc::new(AtomicU64::new(1));
        let per_shard_flight = self.cfg.flight_cap.div_ceil(n_shards);
        let shards: Vec<ShardState> = (0..n_shards)
            .map(|_| ShardState {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                stats: Arc::new(ServerStats::default()),
                flight: FlightRecorder::new_sharing(per_shard_flight, Arc::clone(&seq)),
            })
            .collect();
        // total capacity split across stripes: stripe s gets its floor
        // share plus one of the remainder entries
        let stripe_cap = |s: usize| {
            self.cfg.cache_cap / n_shards + usize::from(s < self.cfg.cache_cap % n_shards)
        };
        let stripes: Vec<CacheStripe> = (0..n_shards)
            .map(|s| CacheStripe {
                tasks: Mutex::new(BoundedCache::new(stripe_cap(s))),
                outcomes: Mutex::new(ClockCache::new(stripe_cap(s))),
                inflight: Mutex::new(HashMap::new()),
            })
            .collect();

        // cache persistence: replay the snapshot's valid prefix into the
        // stripes, then keep appending fresh computed outcomes
        let persist = match &self.cfg.cache_file {
            Some(path) => {
                let fp = config_fingerprint(&self.cfg.planner);
                let snap = open_snapshot(path, fp)?;
                for entry in snap.loaded {
                    let stripe = &stripes[(entry.key % n_shards as u64) as usize];
                    stripe.outcomes.lock().unwrap().insert(
                        entry.key,
                        Arc::new(CachedOutcome {
                            sko: entry.payload,
                            class: entry.class,
                            rg_nodes: entry.rg_nodes,
                        }),
                    );
                }
                Some(snap.appender)
            }
            None => None,
        };

        let state = ServeState {
            shards,
            stripes,
            stop: Arc::clone(&self.stop),
            planner: Planner::new(self.cfg.planner),
            planner_cfg: self.cfg.planner,
            persist,
            queue_cap: self.cfg.queue_cap,
        };
        let mut accept_error = None;
        std::thread::scope(|s| {
            for w in 0..workers {
                let shard_idx = w % n_shards;
                let state = &state;
                s.spawn(move || worker_loop(state, shard_idx));
            }
            let mut next_shard = 0usize;
            while !self.stop.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        let _ = stream.set_nodelay(true);
                        let shard = &state.shards[next_shard];
                        next_shard = (next_shard + 1) % n_shards;
                        let mut q = shard.queue.lock().unwrap();
                        if q.len() >= self.cfg.queue_cap {
                            drop(q);
                            shard.stats.record_rejected();
                            reject(stream);
                        } else {
                            q.push_back((stream, Instant::now()));
                            shard.stats.set_queue_depth(q.len());
                            drop(q);
                            shard.available.notify_one();
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) => {
                        accept_error = Some(e);
                        self.stop.store(true, Ordering::SeqCst);
                    }
                }
            }
            state.notify_all_shards();
        });
        match accept_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Best-effort admission-control rejection: one frame, then drop.
fn reject(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = write_frame(&mut stream, &encode_response(&Response::Rejected("queue full".into())));
}

fn worker_loop(state: &ServeState, shard_idx: usize) {
    let shard = &state.shards[shard_idx];
    loop {
        let conn = {
            let mut q = shard.queue.lock().unwrap();
            loop {
                if let Some(c) = q.pop_front() {
                    shard.stats.set_queue_depth(q.len());
                    break Some(c);
                }
                if state.stop.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) =
                    shard.available.wait_timeout(q, Duration::from_millis(50)).unwrap();
                q = guard;
            }
        };
        match conn {
            Some((stream, enqueued)) => {
                let wait_us = enqueued.elapsed().as_micros() as u64;
                shard.stats.record_queue_wait(wait_us);
                sekitei_obs::event("queue_wait_us", wait_us);
                handle_conn(state, shard, stream, wait_us)
            }
            None => break,
        }
    }
}

/// Serve every frame on one connection until EOF, timeout or shutdown.
///
/// Reads go through a [`BufReader`]; responses accumulate in an
/// out-buffer that is flushed with one `write_all` when the reader has
/// no more buffered requests (i.e. just before the worker would block).
/// For a pipelined batch of K requests this is 2 syscalls instead of
/// 2K — on a single core, where the workers and the kernel share the
/// CPU, that syscall count *is* the throughput ceiling.
///
/// `queue_wait_us` is the accept-queue wait of this connection; it is
/// attributed to every request the connection carries (with pipelining
/// only the first request actually paid it, but the attribution keeps
/// "how long did admission stall this client" answerable per record).
fn handle_conn(state: &ServeState, shard: &ShardState, stream: TcpStream, queue_wait_us: u64) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::with_capacity(64 * 1024, stream);
    let mut out: Vec<u8> = Vec::with_capacity(64 * 1024);
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(f) => f,
            Err(_) => return, // EOF, timeout or garbage length — drop
        };
        let (payload, done) = match decode_request(&frame) {
            // Malformed frames answer an Error response and keep the
            // connection serving — a garbled control frame must never take
            // the server (or even the connection) down.
            Err(e) => (encode_response(&Response::Error(e.to_string())), false),
            Ok(Request::Stats) => {
                let shard_stats: Vec<_> =
                    state.shards.iter().map(|sh| Arc::clone(&sh.stats)).collect();
                let snap = ServerStats::merged_snapshot(&shard_stats);
                (encode_response(&Response::Stats(snap)), false)
            }
            Ok(Request::Metrics) => {
                let shard_stats: Vec<_> =
                    state.shards.iter().map(|sh| Arc::clone(&sh.stats)).collect();
                let text = sekitei_obs::expose(&ServerStats::merged_registry(&shard_stats));
                (encode_response(&Response::Metrics(text)), false)
            }
            Ok(Request::FlightRecorder) => {
                let rings: Vec<&FlightRecorder> =
                    state.shards.iter().map(|sh| &sh.flight).collect();
                (encode_response(&Response::FlightRecorder(merged_dump(&rings))), false)
            }
            Ok(Request::Shutdown) => {
                state.stop.store(true, Ordering::SeqCst);
                state.notify_all_shards();
                (encode_response(&Response::Bye), true)
            }
            Ok(Request::Plan { trace_id, profile, priority, problem }) => (
                handle_plan(state, shard, trace_id, profile, priority, queue_wait_us, &problem),
                false,
            ),
        };
        if frame_into(&mut out, &payload).is_err() {
            return;
        }
        // flush when the client is out of pipelined requests (the next
        // read would block), when the batch is getting large, or on Bye
        if done || reader.buffer().is_empty() || out.len() >= 256 * 1024 {
            if writer.write_all(&out).is_err() {
                return;
            }
            out.clear();
        }
        if done {
            return;
        }
    }
}

/// Per-request self-time collector behind the `--profile` flag: when the
/// request asked for a profile, each pipeline stage is timed inline with
/// `Instant` (independent of the global tracing gate, so profiling one
/// request never requires turning on process-wide tracing) and shipped
/// back as an `SKP1` table next to the outcome.
struct PhaseTimes {
    enabled: bool,
    rows: Vec<WirePhase>,
}

impl PhaseTimes {
    fn new(enabled: bool, queue_wait_us: u64) -> Self {
        let mut rows = Vec::new();
        if enabled {
            rows.push(WirePhase {
                name: "queue_wait".into(),
                self_ns: queue_wait_us * 1_000,
                count: 1,
            });
        }
        PhaseTimes { enabled, rows }
    }

    /// Run `f`, timing it as phase `name` when profiling is on.
    fn timed<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        if !self.enabled {
            return f();
        }
        let t = Instant::now();
        let out = f();
        self.rows.push(WirePhase {
            name: name.into(),
            self_ns: t.elapsed().as_nanos() as u64,
            count: 1,
        });
        out
    }
}

/// The shed threshold for a priority at a given per-shard queue cap:
/// `None` means this priority is never shed by the gate.
fn shed_threshold(priority: Priority, queue_cap: usize) -> Option<usize> {
    match priority {
        Priority::High => None,
        Priority::Normal => Some(queue_cap),
        Priority::Low => Some(queue_cap.div_ceil(2)),
    }
}

/// What the leader's compute path produced, ready to cache/publish/serve.
struct Computed {
    cached: Arc<CachedOutcome>,
    tier: CacheTier,
    cacheable: bool,
}

/// The serving pipeline for one plan request: priority gate → outcome
/// stripe → single-flight election → (leader) compiled tier → full
/// decode + compile → search under the configured deadline,
/// sim-validating any degraded plan before it leaves the process.
/// Joiners skip everything and wait for the leader's published bytes.
/// Every path — shed, cache hit, coalesced, computed, error — lands one
/// flight record or shed count and one outcome-class count.
#[allow(clippy::too_many_arguments)]
fn handle_plan(
    state: &ServeState,
    shard: &ShardState,
    trace_id: u64,
    profile: bool,
    priority: Priority,
    queue_wait_us: u64,
    problem_bytes: &[u8],
) -> Vec<u8> {
    let _span = sekitei_obs::span("request");
    if trace_id != 0 {
        // Tag the span tree: the event's parent is this request span, so
        // every phase span below shares the id through it.
        sekitei_obs::event("trace_id", trace_id);
    }
    let t_req = Instant::now();

    // priority gate: under queue pressure on *this shard*, shed lower
    // priorities before doing any work for them. A zero threshold means
    // a zero queue cap, where connection-level admission control already
    // rejects everything — the gate stays out of it.
    if let Some(threshold) = shed_threshold(priority, state.queue_cap) {
        if threshold > 0 && shard.queue.lock().unwrap().len() >= threshold {
            shard.stats.record_shed(priority);
            sekitei_obs::event("queue_shed", 1);
            return encode_response(&Response::Rejected(format!(
                "queue pressure: {} priority request shed",
                match priority {
                    Priority::High => "high",
                    Priority::Normal => "normal",
                    Priority::Low => "low",
                }
            )));
        }
    }

    let key = content_hash(problem_bytes);
    let stripe = state.stripe(key);
    let mut phases = PhaseTimes::new(profile, queue_wait_us);

    let cached = phases.timed("cache", || stripe.outcomes.lock().unwrap().get(key));
    if let Some(c) = cached {
        sekitei_obs::event("outcome_cache_hit", 1);
        shard.stats.record_cache_hit();
        return serve_cached_bytes(
            shard,
            &c,
            ServedVia::Cache,
            trace_id,
            key,
            queue_wait_us,
            t_req,
            &phases.rows,
        );
    }

    // single-flight election: first request for a fingerprint leads, the
    // rest join its waiter list and fan out the leader's bytes
    let flight_entry = {
        let mut inflight = stripe.inflight.lock().unwrap();
        match inflight.get(&key) {
            Some(f) => {
                let f = Arc::clone(f);
                drop(inflight);
                sekitei_obs::event("coalesced_join", 1);
                return match wait_for_leader(&f, &state.stop) {
                    Some(Ok(c)) => {
                        shard.stats.record_coalesced();
                        serve_cached_bytes(
                            shard,
                            &c,
                            ServedVia::Coalesced,
                            trace_id,
                            key,
                            queue_wait_us,
                            t_req,
                            &phases.rows,
                        )
                    }
                    Some(Err(msg)) => plan_error(shard, trace_id, key, queue_wait_us, t_req, &msg),
                    None => plan_error(
                        shard,
                        trace_id,
                        key,
                        queue_wait_us,
                        t_req,
                        "server shutting down",
                    ),
                };
            }
            None => {
                let f = Arc::new(InFlight::default());
                inflight.insert(key, Arc::clone(&f));
                f
            }
        }
    };

    // leader: run the compute path, then publish — success or error —
    // *after* the cache insert, so a request arriving as the in-flight
    // entry disappears finds the outcome in the stripe instead
    match compute_plan(state, shard, &mut phases, key, problem_bytes, t_req) {
        Ok(computed) => {
            if computed.cacheable {
                stripe.outcomes.lock().unwrap().insert(key, Arc::clone(&computed.cached));
                if let Some(p) = &state.persist {
                    p.append(
                        key,
                        computed.cached.class,
                        computed.cached.rg_nodes,
                        &computed.cached.sko,
                    );
                }
            }
            publish(stripe, &flight_entry, key, Ok(Arc::clone(&computed.cached)));
            let class = computed.cached.class;
            shard.stats.record_class(class);
            let latency_us = t_req.elapsed().as_micros() as u64;
            shard.stats.record_served(latency_us);
            shard.flight.record(FlightRecord {
                seq: 0,
                trace_id,
                fingerprint: key,
                class,
                tier: computed.tier,
                queue_wait_us,
                rg_nodes: computed.cached.rg_nodes,
                latency_us,
            });
            let mut payload = outcome_header(ServedVia::Computed, trace_id, &phases.rows);
            payload.extend_from_slice(&computed.cached.sko);
            payload
        }
        Err(msg) => {
            publish(stripe, &flight_entry, key, Err(msg.clone()));
            plan_error(shard, trace_id, key, queue_wait_us, t_req, &msg)
        }
    }
}

/// Leader publication: set the slot, wake every joiner, then retire the
/// in-flight entry. This order leaves no window where a joiner holds the
/// entry but can never see a result.
fn publish(
    stripe: &CacheStripe,
    f: &Arc<InFlight>,
    key: u64,
    result: Result<Arc<CachedOutcome>, String>,
) {
    *f.slot.lock().unwrap() = Some(result);
    f.done.notify_all();
    stripe.inflight.lock().unwrap().remove(&key);
}

/// Joiner wait: block until the leader publishes. Returns `None` only on
/// shutdown (the leader always publishes, even its errors).
fn wait_for_leader(f: &InFlight, stop: &AtomicBool) -> Option<Result<Arc<CachedOutcome>, String>> {
    let mut slot = f.slot.lock().unwrap();
    loop {
        if let Some(result) = slot.as_ref() {
            return Some(result.clone());
        }
        if stop.load(Ordering::SeqCst) {
            return None;
        }
        let (guard, _) = f.done.wait_timeout(slot, Duration::from_millis(50)).unwrap();
        slot = guard;
    }
}

/// Answer a request from already-encoded outcome bytes (outcome-cache hit
/// or coalesced fan-out): class partition records `Cached` — how the
/// request was *answered* — while the flight record keeps the cached
/// outcome's content class.
#[allow(clippy::too_many_arguments)]
fn serve_cached_bytes(
    shard: &ShardState,
    c: &CachedOutcome,
    via: ServedVia,
    trace_id: u64,
    key: u64,
    queue_wait_us: u64,
    t_req: Instant,
    phase_rows: &[WirePhase],
) -> Vec<u8> {
    shard.stats.record_class(OutcomeClass::Cached);
    let latency_us = t_req.elapsed().as_micros() as u64;
    shard.stats.record_served(latency_us);
    shard.flight.record(FlightRecord {
        seq: 0,
        trace_id,
        fingerprint: key,
        class: c.class,
        tier: CacheTier::Outcome,
        queue_wait_us,
        rg_nodes: c.rg_nodes,
        latency_us,
    });
    let mut payload = outcome_header(via, trace_id, phase_rows);
    payload.extend_from_slice(&c.sko);
    payload
}

/// The leader's compute path: compiled tier → full decode + compile,
/// then search under the configured deadline, sim-validating any
/// degraded plan before it leaves the process.
fn compute_plan(
    state: &ServeState,
    shard: &ShardState,
    phases: &mut PhaseTimes,
    key: u64,
    problem_bytes: &[u8],
    t_req: Instant,
) -> Result<Computed, String> {
    let stripe = state.stripe(key);
    let entry = stripe.tasks.lock().unwrap().get(key);
    let tier = if entry.is_some() { CacheTier::Task } else { CacheTier::Full };
    let entry = match entry {
        Some(e) => {
            sekitei_obs::event("task_cache_hit", 1);
            shard.stats.record_task_cache_hit();
            e
        }
        None => {
            let decoded = phases.timed("decode", || {
                let _g = sekitei_obs::span("decode");
                sekitei_spec::decode(problem_bytes)
            });
            let problem = decoded.map_err(|e| e.to_string())?;
            // compile() opens its own "compile" span under this request
            let task = phases.timed("compile", || compile(&problem)).map_err(|e| e.to_string())?;
            sekitei_obs::event("cache_miss", 1);
            shard.stats.record_cache_miss();
            let arc = Arc::new((problem, task));
            stripe.tasks.lock().unwrap().insert(key, Arc::clone(&arc));
            arc
        }
    };

    // `t_req` anchors both the reported total time and the deadline, so
    // whatever the cache tiers saved is returned to the search budget
    let (outcome, incumbent_used) = phases.timed("search", || {
        let _g = sekitei_obs::span("search");
        if state.planner_cfg.anytime {
            // race the exact search against the SLS lane; a deadline hit
            // returns the best sim-validated incumbent with a finite gap
            // instead of the weaker concretize_relaxed degraded path
            let a =
                sekitei_anytime::plan_task(&entry.0, entry.1.clone(), &state.planner_cfg, t_req);
            (a.outcome, a.incumbent_used)
        } else {
            (state.planner.plan_task(entry.1.clone(), t_req), false)
        }
    });
    let mut wire = outcome_to_wire(&outcome);
    if incumbent_used {
        // the incumbent already passed the full simulator inside the lane;
        // count degraded service when its sources bound at relaxed values
        if outcome.plan.as_ref().is_some_and(|p| p.degraded) {
            shard.stats.record_degraded();
        }
    } else if outcome.plan.as_ref().is_some_and(|p| p.degraded) {
        let report = phases.timed("validate", || {
            let _g = sekitei_obs::span("validate");
            let plan = outcome.plan.as_ref().expect("checked above");
            sekitei_sim::validate_plan(&entry.0, &outcome.task, plan)
        });
        if report.ok {
            shard.stats.record_degraded();
        } else {
            // never ship a degraded plan the simulator rejects — fall back
            // to bound-only, which is still a useful answer. The gap and
            // certificate describe the dropped plan, so they go with it.
            wire.plan = None;
            wire.optimality_gap = None;
            wire.certificate = None;
        }
    }
    let sko = phases.timed("encode", || {
        let _g = sekitei_obs::span("encode");
        encode_outcome(&wire).to_vec()
    });
    let class = OutcomeClass::of_outcome(&wire);
    // outcomes are deterministic unless the wall clock cut the search
    // short: node- and reject-budget exhaustion is a pure function of
    // the problem and config, so those outcomes cache and replay
    // soundly — only deadline-tripped ones depend on timing luck.
    // (Deadline outcomes still fan out to coalesced joiners: they asked
    // for the same problem *now*, and this is the answer "now" produced.)
    let cacheable = !outcome.stats.deadline_hit;
    Ok(Computed {
        cached: Arc::new(CachedOutcome { sko, class, rg_nodes: wire.stats.rg_nodes }),
        tier,
        cacheable,
    })
}

/// A failed plan request still lands in the telemetry plane: one
/// `class_error` count and one flight record, then the error response.
fn plan_error(
    shard: &ShardState,
    trace_id: u64,
    fingerprint: u64,
    queue_wait_us: u64,
    t_req: Instant,
    msg: &str,
) -> Vec<u8> {
    shard.stats.record_class(OutcomeClass::Error);
    shard.flight.record(FlightRecord {
        seq: 0,
        trace_id,
        fingerprint,
        class: OutcomeClass::Error,
        tier: CacheTier::Full,
        queue_wait_us,
        rg_nodes: 0,
        latency_us: t_req.elapsed().as_micros() as u64,
    });
    encode_response(&Response::Error(msg.to_string()))
}
