//! The serving loop: a nonblocking acceptor feeding a bounded connection
//! queue drained by scoped worker threads (the same scoped-thread pattern
//! as `Planner::plan_batch` — no detached threads, no channels).

use crate::cache::{content_hash, BoundedCache};
use crate::convert::outcome_to_wire;
use crate::flight::{CacheTier, FlightRecord, FlightRecorder, OutcomeClass};
use crate::protocol::{
    decode_request, encode_response, outcome_header, read_frame, write_frame, Request, Response,
};
use crate::stats::ServerStats;
use sekitei_compile::{compile, PlanningTask};
use sekitei_model::CppProblem;
use sekitei_planner::{Planner, PlannerConfig};
use sekitei_spec::{encode_outcome, WirePhase};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Serving configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads draining the connection queue (`0` = one per
    /// available core).
    pub workers: usize,
    /// Admission control: connections beyond this many waiting in the
    /// queue are turned away with a `Rejected` response.
    pub queue_cap: usize,
    /// Entries per cache tier (compiled tasks and completed outcomes).
    pub cache_cap: usize,
    /// Planner configuration applied to every request. The serve defaults
    /// turn on a per-request deadline and graceful degradation — the two
    /// knobs that make an optimal-but-occasionally-explosive planner
    /// servable.
    pub planner: PlannerConfig,
    /// Flight-recorder capacity: the most recent this-many plan requests
    /// stay dumpable for tail-latency post-mortems.
    pub flight_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            queue_cap: 128,
            cache_cap: 256,
            planner: PlannerConfig {
                deadline: Some(Duration::from_millis(2000)),
                degrade: true,
                ..PlannerConfig::default()
            },
            flight_cap: 4096,
        }
    }
}

/// Flips the serving loop's stop flag; cloneable across threads.
#[derive(Debug, Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Ask the server to stop. Idempotent; the loop notices within a few
    /// milliseconds.
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// True once shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// A bound planning service. [`Server::run`] blocks the calling thread
/// until a shutdown request arrives (protocol `Shutdown` frame or
/// [`ShutdownHandle::shutdown`]).
#[derive(Debug)]
pub struct Server {
    cfg: ServerConfig,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
}

/// A completed outcome in the cache: the encoded `SKO1` bytes replayed on
/// a hit, plus the content class and search size so hits can be
/// flight-recorded and classified without decoding.
struct CachedOutcome {
    sko: Vec<u8>,
    class: OutcomeClass,
    rg_nodes: u64,
}

/// Everything the workers share, borrowed for the lifetime of the scope.
struct ServeState {
    /// Accepted connections waiting for a worker, with their enqueue time
    /// (the queue-wait histogram measures accept → worker-pickup).
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    available: Condvar,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    flight: FlightRecorder,
    planner: Planner,
    planner_cfg: PlannerConfig,
    tasks: Mutex<BoundedCache<Arc<(CppProblem, PlanningTask)>>>,
    outcomes: Mutex<BoundedCache<Arc<CachedOutcome>>>,
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port, then
    /// [`Server::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            cfg,
            listener,
            stop: Arc::new(AtomicBool::new(false)),
            stats: Arc::new(ServerStats::default()),
        })
    }

    /// The bound socket address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared counters (live; snapshot any time).
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// A handle that stops [`Server::run`] from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.stop))
    }

    /// Serve until shutdown. Workers run on scoped threads; returning
    /// means every worker has drained and exited.
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let workers = if self.cfg.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.cfg.workers
        };
        let state = ServeState {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: Arc::clone(&self.stop),
            stats: Arc::clone(&self.stats),
            flight: FlightRecorder::new(self.cfg.flight_cap),
            planner: Planner::new(self.cfg.planner),
            planner_cfg: self.cfg.planner,
            tasks: Mutex::new(BoundedCache::new(self.cfg.cache_cap)),
            outcomes: Mutex::new(BoundedCache::new(self.cfg.cache_cap)),
        };
        let mut accept_error = None;
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| worker_loop(&state));
            }
            while !self.stop.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        let _ = stream.set_nodelay(true);
                        let mut q = state.queue.lock().unwrap();
                        if q.len() >= self.cfg.queue_cap {
                            drop(q);
                            self.stats.record_rejected();
                            reject(stream);
                        } else {
                            q.push_back((stream, Instant::now()));
                            self.stats.set_queue_depth(q.len());
                            drop(q);
                            state.available.notify_one();
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) => {
                        accept_error = Some(e);
                        self.stop.store(true, Ordering::SeqCst);
                    }
                }
            }
            state.available.notify_all();
        });
        match accept_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Best-effort admission-control rejection: one frame, then drop.
fn reject(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = write_frame(&mut stream, &encode_response(&Response::Rejected("queue full".into())));
}

fn worker_loop(state: &ServeState) {
    loop {
        let conn = {
            let mut q = state.queue.lock().unwrap();
            loop {
                if let Some(c) = q.pop_front() {
                    state.stats.set_queue_depth(q.len());
                    break Some(c);
                }
                if state.stop.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) =
                    state.available.wait_timeout(q, Duration::from_millis(50)).unwrap();
                q = guard;
            }
        };
        match conn {
            Some((stream, enqueued)) => {
                let wait_us = enqueued.elapsed().as_micros() as u64;
                state.stats.record_queue_wait(wait_us);
                sekitei_obs::event("queue_wait_us", wait_us);
                handle_conn(state, stream, wait_us)
            }
            None => break,
        }
    }
}

/// Serve every frame on one connection until EOF, timeout or shutdown.
/// `queue_wait_us` is the accept-queue wait of this connection; it is
/// attributed to every request the connection carries (with pipelining
/// only the first request actually paid it, but the attribution keeps
/// "how long did admission stall this client" answerable per record).
fn handle_conn(state: &ServeState, mut stream: TcpStream, queue_wait_us: u64) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(_) => return, // EOF, timeout or garbage length — drop
        };
        let (payload, done) = match decode_request(&frame) {
            // Malformed frames answer an Error response and keep the
            // connection serving — a garbled control frame must never take
            // the server (or even the connection) down.
            Err(e) => (encode_response(&Response::Error(e.to_string())), false),
            Ok(Request::Stats) => {
                (encode_response(&Response::Stats(state.stats.snapshot())), false)
            }
            Ok(Request::Metrics) => {
                let text = sekitei_obs::expose(state.stats.registry());
                (encode_response(&Response::Metrics(text)), false)
            }
            Ok(Request::FlightRecorder) => {
                (encode_response(&Response::FlightRecorder(state.flight.dump())), false)
            }
            Ok(Request::Shutdown) => {
                state.stop.store(true, Ordering::SeqCst);
                state.available.notify_all();
                (encode_response(&Response::Bye), true)
            }
            Ok(Request::Plan { trace_id, profile, problem }) => {
                (handle_plan(state, trace_id, profile, queue_wait_us, &problem), false)
            }
        };
        if write_frame(&mut stream, &payload).is_err() || done {
            return;
        }
    }
}

/// Per-request self-time collector behind the `--profile` flag: when the
/// request asked for a profile, each pipeline stage is timed inline with
/// `Instant` (independent of the global tracing gate, so profiling one
/// request never requires turning on process-wide tracing) and shipped
/// back as an `SKP1` table next to the outcome.
struct PhaseTimes {
    enabled: bool,
    rows: Vec<WirePhase>,
}

impl PhaseTimes {
    fn new(enabled: bool, queue_wait_us: u64) -> Self {
        let mut rows = Vec::new();
        if enabled {
            rows.push(WirePhase {
                name: "queue_wait".into(),
                self_ns: queue_wait_us * 1_000,
                count: 1,
            });
        }
        PhaseTimes { enabled, rows }
    }

    /// Run `f`, timing it as phase `name` when profiling is on.
    fn timed<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        if !self.enabled {
            return f();
        }
        let t = Instant::now();
        let out = f();
        self.rows.push(WirePhase {
            name: name.into(),
            self_ns: t.elapsed().as_nanos() as u64,
            count: 1,
        });
        out
    }
}

/// The serving pipeline for one plan request: outcome tier → compiled
/// tier → full decode + compile, then search under the configured
/// deadline, sim-validating any degraded plan before it leaves the
/// process. Every path — cache hit, computed, error — lands one flight
/// record and one outcome-class count.
fn handle_plan(
    state: &ServeState,
    trace_id: u64,
    profile: bool,
    queue_wait_us: u64,
    problem_bytes: &[u8],
) -> Vec<u8> {
    let _span = sekitei_obs::span("request");
    if trace_id != 0 {
        // Tag the span tree: the event's parent is this request span, so
        // every phase span below shares the id through it.
        sekitei_obs::event("trace_id", trace_id);
    }
    let t_req = Instant::now();
    let key = content_hash(problem_bytes);
    let mut phases = PhaseTimes::new(profile, queue_wait_us);

    let cached = phases.timed("cache", || state.outcomes.lock().unwrap().get(key));
    if let Some(c) = cached {
        sekitei_obs::event("outcome_cache_hit", 1);
        state.stats.record_cache_hit();
        state.stats.record_class(OutcomeClass::Cached);
        let latency_us = t_req.elapsed().as_micros() as u64;
        state.stats.record_served(latency_us);
        state.flight.record(FlightRecord {
            seq: 0,
            trace_id,
            fingerprint: key,
            class: c.class,
            tier: CacheTier::Outcome,
            queue_wait_us,
            rg_nodes: c.rg_nodes,
            latency_us,
        });
        let mut payload = outcome_header(true, trace_id, &phases.rows);
        payload.extend_from_slice(&c.sko);
        return payload;
    }

    let entry = state.tasks.lock().unwrap().get(key);
    let tier = if entry.is_some() { CacheTier::Task } else { CacheTier::Full };
    let entry = match entry {
        Some(e) => {
            sekitei_obs::event("task_cache_hit", 1);
            state.stats.record_task_cache_hit();
            e
        }
        None => {
            let decoded = phases.timed("decode", || {
                let _g = sekitei_obs::span("decode");
                sekitei_spec::decode(problem_bytes)
            });
            let problem = match decoded {
                Ok(p) => p,
                Err(e) => {
                    return plan_error(state, trace_id, key, queue_wait_us, t_req, &e.to_string())
                }
            };
            // compile() opens its own "compile" span under this request
            let task = match phases.timed("compile", || compile(&problem)) {
                Ok(t) => t,
                Err(e) => {
                    return plan_error(state, trace_id, key, queue_wait_us, t_req, &e.to_string())
                }
            };
            sekitei_obs::event("cache_miss", 1);
            state.stats.record_cache_miss();
            let arc = Arc::new((problem, task));
            state.tasks.lock().unwrap().insert(key, Arc::clone(&arc));
            arc
        }
    };

    // `t_req` anchors both the reported total time and the deadline, so
    // whatever the cache tiers saved is returned to the search budget
    let (outcome, incumbent_used) = phases.timed("search", || {
        let _g = sekitei_obs::span("search");
        if state.planner_cfg.anytime {
            // race the exact search against the SLS lane; a deadline hit
            // returns the best sim-validated incumbent with a finite gap
            // instead of the weaker concretize_relaxed degraded path
            let a =
                sekitei_anytime::plan_task(&entry.0, entry.1.clone(), &state.planner_cfg, t_req);
            (a.outcome, a.incumbent_used)
        } else {
            (state.planner.plan_task(entry.1.clone(), t_req), false)
        }
    });
    let mut wire = outcome_to_wire(&outcome);
    if incumbent_used {
        // the incumbent already passed the full simulator inside the lane;
        // count degraded service when its sources bound at relaxed values
        if outcome.plan.as_ref().is_some_and(|p| p.degraded) {
            state.stats.record_degraded();
        }
    } else if outcome.plan.as_ref().is_some_and(|p| p.degraded) {
        let report = phases.timed("validate", || {
            let _g = sekitei_obs::span("validate");
            let plan = outcome.plan.as_ref().expect("checked above");
            sekitei_sim::validate_plan(&entry.0, &outcome.task, plan)
        });
        if report.ok {
            state.stats.record_degraded();
        } else {
            // never ship a degraded plan the simulator rejects — fall back
            // to bound-only, which is still a useful answer. The gap and
            // certificate describe the dropped plan, so they go with it.
            wire.plan = None;
            wire.optimality_gap = None;
            wire.certificate = None;
        }
    }
    let sko = phases.timed("encode", || {
        let _g = sekitei_obs::span("encode");
        encode_outcome(&wire).to_vec()
    });
    let class = OutcomeClass::of_outcome(&wire);
    if !outcome.stats.deadline_hit {
        // outcomes are deterministic unless the wall clock cut the search
        // short: node- and reject-budget exhaustion is a pure function of
        // the problem and config, so those outcomes cache and replay
        // soundly — only deadline-tripped ones depend on timing luck
        state.outcomes.lock().unwrap().insert(
            key,
            Arc::new(CachedOutcome { sko: sko.clone(), class, rg_nodes: wire.stats.rg_nodes }),
        );
    }
    state.stats.record_class(class);
    let latency_us = t_req.elapsed().as_micros() as u64;
    state.stats.record_served(latency_us);
    state.flight.record(FlightRecord {
        seq: 0,
        trace_id,
        fingerprint: key,
        class,
        tier,
        queue_wait_us,
        rg_nodes: wire.stats.rg_nodes,
        latency_us,
    });
    let mut payload = outcome_header(false, trace_id, &phases.rows);
    payload.extend_from_slice(&sko);
    payload
}

/// A failed plan request still lands in the telemetry plane: one
/// `class_error` count and one flight record, then the error response.
fn plan_error(
    state: &ServeState,
    trace_id: u64,
    fingerprint: u64,
    queue_wait_us: u64,
    t_req: Instant,
    msg: &str,
) -> Vec<u8> {
    state.stats.record_class(OutcomeClass::Error);
    state.flight.record(FlightRecord {
        seq: 0,
        trace_id,
        fingerprint,
        class: OutcomeClass::Error,
        tier: CacheTier::Full,
        queue_wait_us,
        rg_nodes: 0,
        latency_us: t_req.elapsed().as_micros() as u64,
    });
    encode_response(&Response::Error(msg.to_string()))
}
