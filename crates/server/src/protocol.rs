//! Length-prefixed framing and the request/response envelopes of the
//! planning service.
//!
//! A frame is a big-endian `u32` payload length followed by the payload,
//! capped at [`MAX_FRAME`] bytes. The first payload byte is an envelope
//! tag; plan requests carry a `spec::wire`-encoded problem (`SKT1`) and
//! plan responses carry a `spec::wire`-encoded outcome (`SKO1`), so the
//! heavy payloads reuse the existing codecs unchanged.

use sekitei_spec::{
    decode_outcome, decode_phases, encode_outcome, encode_phases, SpecError, WireOutcome, WirePhase,
};
use std::io::{self, Read, Write};

/// Hard cap on a single frame: 16 MiB. Large/D problems encode under
/// 32 KiB, so this is generous headroom while still rejecting a hostile
/// length prefix before allocating.
pub const MAX_FRAME: u32 = 1 << 24;

/// Append one length-prefixed frame to an in-memory buffer without any
/// I/O. The sharded server batches all replies for a pipelined read burst
/// through this and flushes them with a single `write_all`, which is the
/// difference between ~2 syscalls and ~2·batch syscalls per burst.
pub fn frame_into(buf: &mut Vec<u8>, payload: &[u8]) -> io::Result<()> {
    if payload.len() as u64 > MAX_FRAME as u64 {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame too large"));
    }
    buf.reserve(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(payload);
    Ok(())
}

/// Write one length-prefixed frame. Prefix and payload go out in a single
/// `write_all` — two small writes on a raw socket interact badly with
/// Nagle + delayed ACK (~40ms stall per direction).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let mut framed = Vec::new();
    frame_into(&mut framed, payload)?;
    w.write_all(&framed)?;
    w.flush()
}

/// Read one length-prefixed frame. Errors on a truncated prefix, a
/// truncated payload, or an oversized length.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let len = u32::from_be_bytes(len4);
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "oversized frame"));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Admission-control priority of a plan request. Under queue pressure
/// the server sheds low-priority requests first: `Low` sheds once the
/// shard queue is half full, `Normal` only once it is completely full,
/// `High` is never shed by the priority gate (only by the hard
/// connection-level admission cap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Never shed by the priority gate.
    High,
    /// Shed only when the shard queue is completely full.
    #[default]
    Normal,
    /// Shed once the shard queue is half full.
    Low,
}

impl Priority {
    /// Stable wire ordinal.
    pub fn as_u8(self) -> u8 {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Decode a wire ordinal.
    pub fn from_u8(v: u8) -> Option<Priority> {
        match v {
            0 => Some(Priority::High),
            1 => Some(Priority::Normal),
            2 => Some(Priority::Low),
            _ => None,
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Plan the `spec::wire`-encoded (`SKT1`) problem carried verbatim —
    /// the server hashes these bytes as the cache key before decoding.
    Plan {
        /// Client-assigned trace/request id, echoed in the outcome
        /// response and tagged onto every server-side span/event and
        /// flight-recorder record for this request. `0` means the client
        /// did not assign one.
        trace_id: u64,
        /// Ask the server to return its per-phase self-time table
        /// (`SKP1`) alongside the outcome.
        profile: bool,
        /// Admission-control priority; under queue pressure lower
        /// priorities shed first.
        priority: Priority,
        /// The `SKT1` problem bytes.
        problem: Vec<u8>,
    },
    /// Return the serving counters.
    Stats,
    /// Stop accepting connections and shut the service down.
    Shutdown,
    /// Return the full metrics registry in text exposition form
    /// (`sekitei_obs::expo`), so a live server can be scraped.
    Metrics,
    /// Return the flight-recorder dump: the bounded ring of recent
    /// per-request records plus per-latency-bucket exemplars.
    FlightRecorder,
}

const REQ_PLAN: u8 = 0;
const REQ_STATS: u8 = 1;
const REQ_SHUTDOWN: u8 = 2;
const REQ_METRICS: u8 = 3;
const REQ_FLIGHT: u8 = 4;

/// Plan-request flag bit: the client wants the per-phase profile back.
const PLAN_FLAG_PROFILE: u8 = 1;

/// Encode a request payload.
pub fn encode_request(r: &Request) -> Vec<u8> {
    match r {
        Request::Plan { trace_id, profile, priority, problem } => {
            let mut b = Vec::with_capacity(11 + problem.len());
            b.push(REQ_PLAN);
            b.extend_from_slice(&trace_id.to_be_bytes());
            b.push(if *profile { PLAN_FLAG_PROFILE } else { 0 });
            b.push(priority.as_u8());
            b.extend_from_slice(problem);
            b
        }
        Request::Stats => vec![REQ_STATS],
        Request::Shutdown => vec![REQ_SHUTDOWN],
        Request::Metrics => vec![REQ_METRICS],
        Request::FlightRecorder => vec![REQ_FLIGHT],
    }
}

/// Decode a request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, SpecError> {
    match payload.split_first() {
        Some((&REQ_PLAN, rest)) => {
            if rest.len() < 11 {
                return Err(SpecError::wire("truncated plan request header"));
            }
            let trace_id = u64::from_be_bytes(rest[0..8].try_into().unwrap());
            let flags = rest[8];
            if flags & !PLAN_FLAG_PROFILE != 0 {
                return Err(SpecError::wire(format!("bad plan flags {flags:#x}")));
            }
            let priority = Priority::from_u8(rest[9])
                .ok_or_else(|| SpecError::wire(format!("bad plan priority {}", rest[9])))?;
            let problem = rest[10..].to_vec();
            if problem.is_empty() {
                return Err(SpecError::wire("empty plan request"));
            }
            Ok(Request::Plan {
                trace_id,
                profile: flags & PLAN_FLAG_PROFILE != 0,
                priority,
                problem,
            })
        }
        Some((&REQ_STATS, [])) => Ok(Request::Stats),
        Some((&REQ_SHUTDOWN, [])) => Ok(Request::Shutdown),
        Some((&REQ_METRICS, [])) => Ok(Request::Metrics),
        Some((&REQ_FLIGHT, [])) => Ok(Request::FlightRecorder),
        Some((&t, _)) => Err(SpecError::wire(format!("bad request tag {t}"))),
        None => Err(SpecError::wire("empty request")),
    }
}

/// A snapshot of the serving counters (the `/stats` control response).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Plan requests answered (any tier, including degraded).
    pub served: u64,
    /// Requests answered straight from the outcome cache.
    pub cache_hits: u64,
    /// Requests that skipped grounding/leveling via the compiled-task tier
    /// but still ran the search.
    pub task_cache_hits: u64,
    /// Requests that paid the full decode + compile + search path.
    pub cache_misses: u64,
    /// Responses served through the graceful-degradation path.
    pub degraded: u64,
    /// Requests answered by joining an in-flight search for the same
    /// fingerprint (single-flight coalescing): one search ran, its
    /// encoded bytes fanned out to these joiners.
    pub coalesced: u64,
    /// Connections turned away by admission control (queue full).
    pub rejected: u64,
    /// Plan requests shed by the priority gate under queue pressure
    /// (answered `Rejected` without running the planner).
    pub queue_shed: u64,
    /// Median plan latency since startup, microseconds (histogram bucket
    /// lower bound; see `sekitei_obs::Histogram::quantile`).
    pub p50_us: u64,
    /// 95th-percentile plan latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile plan latency, microseconds.
    pub p99_us: u64,
    /// Slowest plan latency observed, microseconds.
    pub max_us: u64,
    /// Median time connections waited in the accept queue, microseconds.
    pub queue_p50_us: u64,
    /// 99th-percentile queue wait, microseconds.
    pub queue_p99_us: u64,
    /// Outcome-class partition of served plan requests: each request lands
    /// in exactly one class (precedence: error > cached > deadline_hit >
    /// budget_exhausted > degraded > exact), so these six sum to the plan
    /// requests handled. `exact` includes proven-infeasible answers — "no
    /// plan exists" is an exact result.
    pub class_exact: u64,
    /// Computed plans served through the graceful-degradation path.
    pub class_degraded: u64,
    /// Requests answered from the outcome cache (same event as
    /// `cache_hits`, counted here as a class for the partition).
    pub class_cached: u64,
    /// Computed outcomes that exhausted a search budget (non-deadline).
    pub class_budget_exhausted: u64,
    /// Computed outcomes cut short by the wall-clock deadline.
    pub class_deadline_hit: u64,
    /// Plan requests answered with an error response.
    pub class_error: u64,
}

impl StatsSnapshot {
    /// Field count of the wire encoding (each a big-endian `u64`).
    pub const WIRE_WORDS: usize = 20;

    fn wire_words(&self) -> [u64; Self::WIRE_WORDS] {
        [
            self.served,
            self.cache_hits,
            self.task_cache_hits,
            self.cache_misses,
            self.degraded,
            self.coalesced,
            self.rejected,
            self.queue_shed,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.max_us,
            self.queue_p50_us,
            self.queue_p99_us,
            self.class_exact,
            self.class_degraded,
            self.class_cached,
            self.class_budget_exhausted,
            self.class_deadline_hit,
            self.class_error,
        ]
    }

    fn from_wire_words(w: &[u64; Self::WIRE_WORDS]) -> Self {
        StatsSnapshot {
            served: w[0],
            cache_hits: w[1],
            task_cache_hits: w[2],
            cache_misses: w[3],
            degraded: w[4],
            coalesced: w[5],
            rejected: w[6],
            queue_shed: w[7],
            p50_us: w[8],
            p95_us: w[9],
            p99_us: w[10],
            max_us: w[11],
            queue_p50_us: w[12],
            queue_p99_us: w[13],
            class_exact: w[14],
            class_degraded: w[15],
            class_cached: w[16],
            class_budget_exhausted: w[17],
            class_deadline_hit: w[18],
            class_error: w[19],
        }
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "served {} (cache {} / task {} / full {}), degraded {}, coalesced {}, \
             rejected {}, shed {}, \
             latency p50 {}µs p95 {}µs p99 {}µs max {}µs, queue p50 {}µs p99 {}µs, \
             classes exact {} / degraded {} / cached {} / budget_exhausted {} / \
             deadline_hit {} / error {}",
            self.served,
            self.cache_hits,
            self.task_cache_hits,
            self.cache_misses,
            self.degraded,
            self.coalesced,
            self.rejected,
            self.queue_shed,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.max_us,
            self.queue_p50_us,
            self.queue_p99_us,
            self.class_exact,
            self.class_degraded,
            self.class_cached,
            self.class_budget_exhausted,
            self.class_deadline_hit,
            self.class_error,
        )
    }
}

/// How an outcome response was produced, as reported in the response
/// header. Distinguishes a fresh search, an outcome-cache replay, and a
/// single-flight fan-out (joined another request's in-flight search).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedVia {
    /// The planner ran for this request.
    Computed,
    /// Replayed from the outcome cache without running the planner.
    Cache,
    /// Joined an in-flight search for the same fingerprint; the leader's
    /// encoded bytes were fanned out to this request.
    Coalesced,
}

impl ServedVia {
    /// True for any path that avoided running the planner fresh
    /// (cache replay or coalesced fan-out).
    pub fn is_warm(self) -> bool {
        !matches!(self, ServedVia::Computed)
    }

    /// Stable wire ordinal.
    pub fn as_u8(self) -> u8 {
        match self {
            ServedVia::Computed => 0,
            ServedVia::Cache => 1,
            ServedVia::Coalesced => 2,
        }
    }

    /// Decode a wire ordinal.
    pub fn from_u8(v: u8) -> Option<ServedVia> {
        match v {
            0 => Some(ServedVia::Computed),
            1 => Some(ServedVia::Cache),
            2 => Some(ServedVia::Coalesced),
            _ => None,
        }
    }
}

impl std::fmt::Display for ServedVia {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ServedVia::Computed => "computed",
            ServedVia::Cache => "cache",
            ServedVia::Coalesced => "coalesced",
        })
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A planning outcome; `served_via` reports whether it came from a
    /// fresh search, the outcome cache, or a coalesced in-flight search.
    Outcome {
        /// How the outcome was produced.
        served_via: ServedVia,
        /// Echo of the request's trace id (0 if none was assigned).
        trace_id: u64,
        /// Per-phase self-time table, present only when the request asked
        /// for a profile. Always fresh — cached outcomes replay the SKO1
        /// bytes but the profile describes *this* request's handling.
        phases: Vec<WirePhase>,
        /// The outcome payload.
        outcome: WireOutcome,
    },
    /// The serving counters.
    Stats(StatsSnapshot),
    /// Admission control turned the request away.
    Rejected(String),
    /// The request failed (malformed problem, compile error, …).
    Error(String),
    /// Shutdown acknowledged; the connection closes after this frame.
    Bye,
    /// The metrics registry in text exposition form.
    Metrics(String),
    /// The flight-recorder dump in its text form.
    FlightRecorder(String),
}

pub(crate) const RESP_OUTCOME: u8 = 0;
const RESP_STATS: u8 = 1;
const RESP_REJECTED: u8 = 2;
const RESP_ERROR: u8 = 3;
const RESP_BYE: u8 = 4;
const RESP_METRICS: u8 = 5;
const RESP_FLIGHT: u8 = 6;

fn put_str(b: &mut Vec<u8>, s: &str) {
    b.extend_from_slice(&(s.len() as u32).to_be_bytes());
    b.extend_from_slice(s.as_bytes());
}

fn get_str(b: &[u8]) -> Result<String, SpecError> {
    if b.len() < 4 {
        return Err(SpecError::wire("truncated string"));
    }
    let len = u32::from_be_bytes([b[0], b[1], b[2], b[3]]) as usize;
    if b.len() != 4 + len {
        return Err(SpecError::wire("bad string length"));
    }
    String::from_utf8(b[4..].to_vec()).map_err(|_| SpecError::wire("invalid utf-8"))
}

/// Build the `RESP_OUTCOME` payload header (everything before the `SKO1`
/// bytes): served-via byte, trace-id echo, and the length-prefixed `SKP1`
/// phase table (length 0 when no profile was requested). Shared with the
/// server's cached-bytes fast path, which appends pre-encoded outcome
/// bytes instead of re-encoding.
pub(crate) fn outcome_header(
    served_via: ServedVia,
    trace_id: u64,
    phases: &[WirePhase],
) -> Vec<u8> {
    let phase_blob = if phases.is_empty() { Vec::new() } else { encode_phases(phases).to_vec() };
    let mut b = Vec::with_capacity(14 + phase_blob.len());
    b.push(RESP_OUTCOME);
    b.push(served_via.as_u8());
    b.extend_from_slice(&trace_id.to_be_bytes());
    b.extend_from_slice(&(phase_blob.len() as u32).to_be_bytes());
    b.extend_from_slice(&phase_blob);
    b
}

/// Encode a response payload.
pub fn encode_response(r: &Response) -> Vec<u8> {
    match r {
        Response::Outcome { served_via, trace_id, phases, outcome } => {
            let mut b = outcome_header(*served_via, *trace_id, phases);
            b.extend_from_slice(&encode_outcome(outcome));
            b
        }
        Response::Stats(s) => {
            let mut b = Vec::with_capacity(1 + StatsSnapshot::WIRE_WORDS * 8);
            b.push(RESP_STATS);
            for v in s.wire_words() {
                b.extend_from_slice(&v.to_be_bytes());
            }
            b
        }
        Response::Rejected(msg) => {
            let mut b = vec![RESP_REJECTED];
            put_str(&mut b, msg);
            b
        }
        Response::Error(msg) => {
            let mut b = vec![RESP_ERROR];
            put_str(&mut b, msg);
            b
        }
        Response::Bye => vec![RESP_BYE],
        Response::Metrics(text) => {
            let mut b = vec![RESP_METRICS];
            put_str(&mut b, text);
            b
        }
        Response::FlightRecorder(text) => {
            let mut b = vec![RESP_FLIGHT];
            put_str(&mut b, text);
            b
        }
    }
}

/// Decode a response payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, SpecError> {
    match payload.split_first() {
        Some((&RESP_OUTCOME, rest)) => {
            if rest.len() < 13 {
                return Err(SpecError::wire("truncated outcome response"));
            }
            let served_via = ServedVia::from_u8(rest[0])
                .ok_or_else(|| SpecError::wire(format!("bad served-via byte {}", rest[0])))?;
            let trace_id = u64::from_be_bytes(rest[1..9].try_into().unwrap());
            let phase_len = u32::from_be_bytes(rest[9..13].try_into().unwrap()) as usize;
            let rest = &rest[13..];
            if rest.len() < phase_len {
                return Err(SpecError::wire("truncated phase table"));
            }
            let phases =
                if phase_len == 0 { Vec::new() } else { decode_phases(&rest[..phase_len])? };
            Ok(Response::Outcome {
                served_via,
                trace_id,
                phases,
                outcome: decode_outcome(&rest[phase_len..])?,
            })
        }
        Some((&RESP_STATS, rest)) => {
            if rest.len() != StatsSnapshot::WIRE_WORDS * 8 {
                return Err(SpecError::wire(format!(
                    "bad stats length {} (expected {})",
                    rest.len(),
                    StatsSnapshot::WIRE_WORDS * 8
                )));
            }
            let mut words = [0u64; StatsSnapshot::WIRE_WORDS];
            for (i, w) in words.iter_mut().enumerate() {
                *w = u64::from_be_bytes(rest[i * 8..i * 8 + 8].try_into().unwrap());
            }
            Ok(Response::Stats(StatsSnapshot::from_wire_words(&words)))
        }
        Some((&RESP_REJECTED, rest)) => Ok(Response::Rejected(get_str(rest)?)),
        Some((&RESP_ERROR, rest)) => Ok(Response::Error(get_str(rest)?)),
        Some((&RESP_BYE, [])) => Ok(Response::Bye),
        Some((&RESP_METRICS, rest)) => Ok(Response::Metrics(get_str(rest)?)),
        Some((&RESP_FLIGHT, rest)) => Ok(Response::FlightRecorder(get_str(rest)?)),
        Some((&t, _)) => Err(SpecError::wire(format!("bad response tag {t}"))),
        None => Err(SpecError::wire("empty response")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sekitei_model::LevelScenario;
    use sekitei_topology::scenarios;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(read_frame(&mut r).is_err()); // clean EOF surfaces as error
    }

    #[test]
    fn frame_rejects_truncated_prefix_and_payload() {
        // truncated length prefix
        for cut in 0..4 {
            let mut r = &b"\x00\x00\x00"[..cut];
            assert!(read_frame(&mut r).is_err());
        }
        // length promises more than arrives
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        for cut in 4..buf.len() {
            let mut r = &buf[..cut];
            assert!(read_frame(&mut r).is_err(), "prefix of {cut} bytes read");
        }
    }

    #[test]
    fn frame_into_matches_write_frame_bytes() {
        let mut streamed = Vec::new();
        write_frame(&mut streamed, b"abc").unwrap();
        let mut buffered = Vec::new();
        frame_into(&mut buffered, b"abc").unwrap();
        assert_eq!(streamed, buffered);
        // batched frames concatenate and read back in order
        frame_into(&mut buffered, b"").unwrap();
        frame_into(&mut buffered, b"xyz").unwrap();
        let mut r = &buffered[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"abc");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), b"xyz");
    }

    #[test]
    fn snapshot_display_carries_greppable_facets() {
        let text = sample_snapshot().to_string();
        for token in ["coalesced 2", "shed 1", "rejected 2", "served 10"] {
            assert!(text.contains(token), "missing {token:?} in {text:?}");
        }
    }

    #[test]
    fn frame_rejects_oversized_length() {
        let big = (MAX_FRAME + 1).to_be_bytes();
        let mut r = &big[..];
        assert!(read_frame(&mut r).is_err());
        let mut w = Vec::new();
        assert!(write_frame(&mut w, &vec![0u8; MAX_FRAME as usize + 1]).is_err());
    }

    #[test]
    fn request_roundtrip() {
        let problem = sekitei_spec::encode(&scenarios::tiny(LevelScenario::B)).to_vec();
        for r in [
            Request::Plan {
                trace_id: 0,
                profile: false,
                priority: Priority::Normal,
                problem: problem.clone(),
            },
            Request::Plan {
                trace_id: 0xDEAD_BEEF_0042_1177,
                profile: true,
                priority: Priority::High,
                problem: problem.clone(),
            },
            Request::Plan { trace_id: 7, profile: false, priority: Priority::Low, problem },
            Request::Stats,
            Request::Shutdown,
            Request::Metrics,
            Request::FlightRecorder,
        ] {
            assert_eq!(decode_request(&encode_request(&r)).unwrap(), r);
        }
    }

    #[test]
    fn request_rejects_malformed() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[9]).is_err());
        assert!(decode_request(&[REQ_PLAN]).is_err()); // plan with no header
                                                       // header but no problem body
        let mut header_only = vec![REQ_PLAN];
        header_only.extend_from_slice(&7u64.to_be_bytes());
        header_only.push(0); // flags
        header_only.push(1); // priority
        assert!(decode_request(&header_only).is_err());
        // undefined flag bits
        let mut bad_flags = header_only.clone();
        bad_flags[9] = 0x80;
        bad_flags.push(1); // non-empty body so only the flags are at fault
        assert!(decode_request(&bad_flags).is_err());
        // undefined priority ordinal
        let mut bad_priority = header_only.clone();
        bad_priority[10] = 3;
        bad_priority.push(1);
        assert!(decode_request(&bad_priority).is_err());
        // v1-style 9-byte header (no priority byte) with a body must not
        // silently decode — the first body byte would be read as priority,
        // and SKT1 problems start with 'S' (0x53), not a valid ordinal
        let mut v1_style = vec![REQ_PLAN];
        v1_style.extend_from_slice(&7u64.to_be_bytes());
        v1_style.push(0);
        v1_style.extend_from_slice(b"SKT1");
        assert!(decode_request(&v1_style).is_err());
        // control requests reject trailing bytes
        assert!(decode_request(&[REQ_STATS, 0]).is_err());
        assert!(decode_request(&[REQ_METRICS, 0]).is_err());
        assert!(decode_request(&[REQ_FLIGHT, 0]).is_err());
    }

    fn sample_snapshot() -> StatsSnapshot {
        StatsSnapshot {
            served: 10,
            cache_hits: 4,
            task_cache_hits: 3,
            cache_misses: 3,
            degraded: 1,
            coalesced: 2,
            rejected: 2,
            queue_shed: 1,
            p50_us: 900,
            p95_us: 20_000,
            p99_us: 45_000,
            max_us: 120_000,
            queue_p50_us: 15,
            queue_p99_us: 250,
            class_exact: 5,
            class_degraded: 1,
            class_cached: 4,
            class_budget_exhausted: 2,
            class_deadline_hit: 1,
            class_error: 3,
        }
    }

    #[test]
    fn response_roundtrip() {
        let outcome = WireOutcome {
            plan: None,
            best_bound: Some(2.5),
            optimality_gap: None,
            stats: Default::default(),
            certificate: None,
        };
        let phases = vec![
            WirePhase { name: "queue_wait".into(), self_ns: 900, count: 1 },
            WirePhase { name: "search".into(), self_ns: 44_000, count: 1 },
        ];
        for r in [
            Response::Outcome {
                served_via: ServedVia::Cache,
                trace_id: 71,
                phases: vec![],
                outcome: outcome.clone(),
            },
            Response::Outcome {
                served_via: ServedVia::Coalesced,
                trace_id: 17,
                phases: vec![],
                outcome: outcome.clone(),
            },
            Response::Outcome { served_via: ServedVia::Computed, trace_id: 0, phases, outcome },
            Response::Stats(sample_snapshot()),
            Response::Rejected("queue full".into()),
            Response::Error("bad magic".into()),
            Response::Bye,
            Response::Metrics("# sekitei-metrics v1\n# end sekitei-metrics\n".into()),
            Response::FlightRecorder("# sekitei-flight v1\n# end sekitei-flight\n".into()),
        ] {
            assert_eq!(decode_response(&encode_response(&r)).unwrap(), r);
        }
    }

    #[test]
    fn stats_frame_is_length_checked() {
        // The widened frame is exactly 1 tag byte + 20 u64 words.
        let encoded = encode_response(&Response::Stats(sample_snapshot()));
        assert_eq!(encoded.len(), 1 + StatsSnapshot::WIRE_WORDS * 8);
        assert_eq!(encoded.len(), 1 + 20 * 8);
        // The pre-widening 12/18-word frames and off-by-one-word frames
        // must be rejected, not silently zero-filled or truncated.
        for words in [12usize, 18, 19, 21] {
            let mut short = vec![RESP_STATS];
            short.extend(vec![0u8; words * 8]);
            let err = decode_response(&short).unwrap_err();
            assert!(err.to_string().contains("stats length"), "words={words}: {err}");
        }
        // And a byte-level truncation inside the last word too.
        assert!(decode_response(&encoded[..encoded.len() - 1]).is_err());
    }

    #[test]
    fn response_rejects_malformed() {
        assert!(decode_response(&[]).is_err());
        assert!(decode_response(&[99]).is_err());
        assert!(decode_response(&[RESP_OUTCOME]).is_err());
        // full header but bad served-via byte (3 is past Coalesced)
        let mut bad_flag = vec![RESP_OUTCOME, 3];
        bad_flag.extend_from_slice(&[0u8; 12]);
        assert!(decode_response(&bad_flag).is_err());
        // phase-table length promising more than arrives
        let mut bad_phase_len = vec![RESP_OUTCOME, 0];
        bad_phase_len.extend_from_slice(&0u64.to_be_bytes());
        bad_phase_len.extend_from_slice(&100u32.to_be_bytes());
        assert!(decode_response(&bad_phase_len).is_err());
        assert!(decode_response(&[RESP_STATS, 0, 0]).is_err());
        assert!(decode_response(&[RESP_BYE, 0]).is_err());
        assert!(decode_response(&[RESP_METRICS, 0]).is_err()); // truncated string
    }
}
