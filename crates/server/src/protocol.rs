//! Length-prefixed framing and the request/response envelopes of the
//! planning service.
//!
//! A frame is a big-endian `u32` payload length followed by the payload,
//! capped at [`MAX_FRAME`] bytes. The first payload byte is an envelope
//! tag; plan requests carry a `spec::wire`-encoded problem (`SKT1`) and
//! plan responses carry a `spec::wire`-encoded outcome (`SKO1`), so the
//! heavy payloads reuse the existing codecs unchanged.

use sekitei_spec::{decode_outcome, encode_outcome, SpecError, WireOutcome};
use std::io::{self, Read, Write};

/// Hard cap on a single frame: 16 MiB. Large/D problems encode under
/// 32 KiB, so this is generous headroom while still rejecting a hostile
/// length prefix before allocating.
pub const MAX_FRAME: u32 = 1 << 24;

/// Write one length-prefixed frame. Prefix and payload go out in a single
/// `write_all` — two small writes on a raw socket interact badly with
/// Nagle + delayed ACK (~40ms stall per direction).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() as u64 > MAX_FRAME as u64 {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame too large"));
    }
    let mut framed = Vec::with_capacity(4 + payload.len());
    framed.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    framed.extend_from_slice(payload);
    w.write_all(&framed)?;
    w.flush()
}

/// Read one length-prefixed frame. Errors on a truncated prefix, a
/// truncated payload, or an oversized length.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let len = u32::from_be_bytes(len4);
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "oversized frame"));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Plan the `spec::wire`-encoded (`SKT1`) problem carried verbatim —
    /// the server hashes these bytes as the cache key before decoding.
    Plan(Vec<u8>),
    /// Return the serving counters.
    Stats,
    /// Stop accepting connections and shut the service down.
    Shutdown,
}

const REQ_PLAN: u8 = 0;
const REQ_STATS: u8 = 1;
const REQ_SHUTDOWN: u8 = 2;

/// Encode a request payload.
pub fn encode_request(r: &Request) -> Vec<u8> {
    match r {
        Request::Plan(problem) => {
            let mut b = Vec::with_capacity(1 + problem.len());
            b.push(REQ_PLAN);
            b.extend_from_slice(problem);
            b
        }
        Request::Stats => vec![REQ_STATS],
        Request::Shutdown => vec![REQ_SHUTDOWN],
    }
}

/// Decode a request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, SpecError> {
    match payload.split_first() {
        Some((&REQ_PLAN, rest)) => {
            if rest.is_empty() {
                return Err(SpecError::wire("empty plan request"));
            }
            Ok(Request::Plan(rest.to_vec()))
        }
        Some((&REQ_STATS, [])) => Ok(Request::Stats),
        Some((&REQ_SHUTDOWN, [])) => Ok(Request::Shutdown),
        Some((&t, _)) => Err(SpecError::wire(format!("bad request tag {t}"))),
        None => Err(SpecError::wire("empty request")),
    }
}

/// A snapshot of the serving counters (the `/stats` control response).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Plan requests answered (any tier, including degraded).
    pub served: u64,
    /// Requests answered straight from the outcome cache.
    pub cache_hits: u64,
    /// Requests that skipped grounding/leveling via the compiled-task tier
    /// but still ran the search.
    pub task_cache_hits: u64,
    /// Requests that paid the full decode + compile + search path.
    pub cache_misses: u64,
    /// Responses served through the graceful-degradation path.
    pub degraded: u64,
    /// Connections turned away by admission control (queue full).
    pub rejected: u64,
    /// Median plan latency since startup, microseconds (histogram bucket
    /// lower bound; see `sekitei_obs::Histogram::quantile`).
    pub p50_us: u64,
    /// 95th-percentile plan latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile plan latency, microseconds.
    pub p99_us: u64,
    /// Slowest plan latency observed, microseconds.
    pub max_us: u64,
    /// Median time connections waited in the accept queue, microseconds.
    pub queue_p50_us: u64,
    /// 99th-percentile queue wait, microseconds.
    pub queue_p99_us: u64,
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "served {} (cache {} / task {} / full {}), degraded {}, rejected {}, \
             latency p50 {}µs p95 {}µs p99 {}µs max {}µs, queue p50 {}µs p99 {}µs",
            self.served,
            self.cache_hits,
            self.task_cache_hits,
            self.cache_misses,
            self.degraded,
            self.rejected,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.max_us,
            self.queue_p50_us,
            self.queue_p99_us,
        )
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A planning outcome; `cache_hit` is true when it came from the
    /// outcome cache without running the planner.
    Outcome {
        /// Served from the outcome cache.
        cache_hit: bool,
        /// The outcome payload.
        outcome: WireOutcome,
    },
    /// The serving counters.
    Stats(StatsSnapshot),
    /// Admission control turned the request away.
    Rejected(String),
    /// The request failed (malformed problem, compile error, …).
    Error(String),
    /// Shutdown acknowledged; the connection closes after this frame.
    Bye,
}

pub(crate) const RESP_OUTCOME: u8 = 0;
const RESP_STATS: u8 = 1;
const RESP_REJECTED: u8 = 2;
const RESP_ERROR: u8 = 3;
const RESP_BYE: u8 = 4;

fn put_str(b: &mut Vec<u8>, s: &str) {
    b.extend_from_slice(&(s.len() as u32).to_be_bytes());
    b.extend_from_slice(s.as_bytes());
}

fn get_str(b: &[u8]) -> Result<String, SpecError> {
    if b.len() < 4 {
        return Err(SpecError::wire("truncated string"));
    }
    let len = u32::from_be_bytes([b[0], b[1], b[2], b[3]]) as usize;
    if b.len() != 4 + len {
        return Err(SpecError::wire("bad string length"));
    }
    String::from_utf8(b[4..].to_vec()).map_err(|_| SpecError::wire("invalid utf-8"))
}

/// Encode a response payload.
pub fn encode_response(r: &Response) -> Vec<u8> {
    match r {
        Response::Outcome { cache_hit, outcome } => {
            let body = encode_outcome(outcome);
            let mut b = Vec::with_capacity(2 + body.len());
            b.push(RESP_OUTCOME);
            b.push(*cache_hit as u8);
            b.extend_from_slice(&body);
            b
        }
        Response::Stats(s) => {
            let mut b = Vec::with_capacity(1 + 12 * 8);
            b.push(RESP_STATS);
            for v in [
                s.served,
                s.cache_hits,
                s.task_cache_hits,
                s.cache_misses,
                s.degraded,
                s.rejected,
                s.p50_us,
                s.p95_us,
                s.p99_us,
                s.max_us,
                s.queue_p50_us,
                s.queue_p99_us,
            ] {
                b.extend_from_slice(&v.to_be_bytes());
            }
            b
        }
        Response::Rejected(msg) => {
            let mut b = vec![RESP_REJECTED];
            put_str(&mut b, msg);
            b
        }
        Response::Error(msg) => {
            let mut b = vec![RESP_ERROR];
            put_str(&mut b, msg);
            b
        }
        Response::Bye => vec![RESP_BYE],
    }
}

/// Decode a response payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, SpecError> {
    match payload.split_first() {
        Some((&RESP_OUTCOME, rest)) => {
            let (&hit, body) =
                rest.split_first().ok_or_else(|| SpecError::wire("truncated outcome response"))?;
            if hit > 1 {
                return Err(SpecError::wire(format!("bad cache-hit flag {hit}")));
            }
            Ok(Response::Outcome { cache_hit: hit == 1, outcome: decode_outcome(body)? })
        }
        Some((&RESP_STATS, rest)) => {
            if rest.len() != 12 * 8 {
                return Err(SpecError::wire("bad stats length"));
            }
            let mut words = [0u64; 12];
            for (i, w) in words.iter_mut().enumerate() {
                *w = u64::from_be_bytes(rest[i * 8..i * 8 + 8].try_into().unwrap());
            }
            Ok(Response::Stats(StatsSnapshot {
                served: words[0],
                cache_hits: words[1],
                task_cache_hits: words[2],
                cache_misses: words[3],
                degraded: words[4],
                rejected: words[5],
                p50_us: words[6],
                p95_us: words[7],
                p99_us: words[8],
                max_us: words[9],
                queue_p50_us: words[10],
                queue_p99_us: words[11],
            }))
        }
        Some((&RESP_REJECTED, rest)) => Ok(Response::Rejected(get_str(rest)?)),
        Some((&RESP_ERROR, rest)) => Ok(Response::Error(get_str(rest)?)),
        Some((&RESP_BYE, [])) => Ok(Response::Bye),
        Some((&t, _)) => Err(SpecError::wire(format!("bad response tag {t}"))),
        None => Err(SpecError::wire("empty response")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sekitei_model::LevelScenario;
    use sekitei_topology::scenarios;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(read_frame(&mut r).is_err()); // clean EOF surfaces as error
    }

    #[test]
    fn frame_rejects_truncated_prefix_and_payload() {
        // truncated length prefix
        for cut in 0..4 {
            let mut r = &b"\x00\x00\x00"[..cut];
            assert!(read_frame(&mut r).is_err());
        }
        // length promises more than arrives
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        for cut in 4..buf.len() {
            let mut r = &buf[..cut];
            assert!(read_frame(&mut r).is_err(), "prefix of {cut} bytes read");
        }
    }

    #[test]
    fn frame_rejects_oversized_length() {
        let big = (MAX_FRAME + 1).to_be_bytes();
        let mut r = &big[..];
        assert!(read_frame(&mut r).is_err());
        let mut w = Vec::new();
        assert!(write_frame(&mut w, &vec![0u8; MAX_FRAME as usize + 1]).is_err());
    }

    #[test]
    fn request_roundtrip() {
        let problem = sekitei_spec::encode(&scenarios::tiny(LevelScenario::B)).to_vec();
        for r in [Request::Plan(problem), Request::Stats, Request::Shutdown] {
            assert_eq!(decode_request(&encode_request(&r)).unwrap(), r);
        }
    }

    #[test]
    fn request_rejects_malformed() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[9]).is_err());
        assert!(decode_request(&[REQ_PLAN]).is_err()); // plan with no body
        assert!(decode_request(&[REQ_STATS, 0]).is_err()); // trailing bytes
    }

    #[test]
    fn response_roundtrip() {
        let snapshot = StatsSnapshot {
            served: 10,
            cache_hits: 4,
            task_cache_hits: 3,
            cache_misses: 3,
            degraded: 1,
            rejected: 2,
            p50_us: 900,
            p95_us: 20_000,
            p99_us: 45_000,
            max_us: 120_000,
            queue_p50_us: 15,
            queue_p99_us: 250,
        };
        let outcome = WireOutcome {
            plan: None,
            best_bound: Some(2.5),
            optimality_gap: None,
            stats: Default::default(),
            certificate: None,
        };
        for r in [
            Response::Outcome { cache_hit: true, outcome },
            Response::Stats(snapshot),
            Response::Rejected("queue full".into()),
            Response::Error("bad magic".into()),
            Response::Bye,
        ] {
            assert_eq!(decode_response(&encode_response(&r)).unwrap(), r);
        }
    }

    #[test]
    fn response_rejects_malformed() {
        assert!(decode_response(&[]).is_err());
        assert!(decode_response(&[99]).is_err());
        assert!(decode_response(&[RESP_OUTCOME]).is_err());
        assert!(decode_response(&[RESP_OUTCOME, 2]).is_err()); // bad flag
        assert!(decode_response(&[RESP_STATS, 0, 0]).is_err());
        assert!(decode_response(&[RESP_BYE, 0]).is_err());
    }
}
