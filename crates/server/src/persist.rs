//! Outcome-cache persistence: an append-only `SKS1` snapshot file.
//!
//! The serving layer appends one checksummed record per freshly computed
//! cacheable outcome (`spec::wire::encode_snapshot_record`), and on start
//! replays the file to pre-warm the outcome tier, so a restart keeps the
//! warm hit rate of the previous process.
//!
//! Loading is deliberately *tolerant where the bytes are damaged and
//! strict where they are wrong*:
//!
//! - A header whose configuration fingerprint differs from the running
//!   server's (different planner settings or crate version) means every
//!   record could replay a stale answer — the file is truncated and the
//!   server cold-starts.
//! - A corrupt or torn tail (kill -9 mid-append, disk bit flip) fails a
//!   record checksum; the valid prefix loads, and the file is truncated
//!   back to that prefix so subsequent appends extend a well-formed file.
//! - Every payload must still decode as `SKO1` before it is trusted; a
//!   record that passes its checksum but not the outcome codec is treated
//!   as the end of the valid prefix. A loaded cache never serves a byte
//!   sequence the wire codec would reject.

use crate::flight::OutcomeClass;
use sekitei_planner::PlannerConfig;
use sekitei_spec::{
    decode_outcome, decode_snapshot_header, decode_snapshot_record, encode_snapshot_header,
    encode_snapshot_record, WireSnapshotRecord, SNAPSHOT_HEADER_LEN,
};
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Mutex;

/// One pre-warmed cache entry recovered from a snapshot file.
#[derive(Debug, Clone)]
pub struct LoadedOutcome {
    /// The cache key (content hash of the problem bytes).
    pub key: u64,
    /// Outcome class of the cached bytes.
    pub class: OutcomeClass,
    /// Reachability-graph node count recorded at compute time.
    pub rg_nodes: u64,
    /// The encoded `SKO1` bytes, validated against the outcome codec.
    pub payload: Vec<u8>,
}

/// Hash the planner configuration and crate version into the fingerprint
/// a snapshot file is bound to. `PlannerConfig`'s `Debug` form covers
/// every field, so any knob that changes search results (budgets,
/// heuristic, deadline, drain mode, …) invalidates the file, as does a
/// version bump that could change plan encoding.
pub fn config_fingerprint(cfg: &PlannerConfig) -> u64 {
    let text = format!("sks1 v1 | {} | {cfg:?}", env!("CARGO_PKG_VERSION"));
    crate::cache::content_hash(text.as_bytes())
}

/// Result of opening a snapshot file: the pre-warmed entries plus the
/// appender for new outcomes.
pub struct SnapshotFile {
    /// Entries recovered from the valid prefix (empty on cold start).
    pub loaded: Vec<LoadedOutcome>,
    /// Appender positioned at the end of the valid prefix.
    pub appender: SnapshotAppender,
}

/// Serialized appender for snapshot records. One mutex for the whole
/// file keeps records atomic with respect to each other; appends happen
/// only on the cold compute path (once per distinct problem), so the
/// lock is nowhere near the warm hot path.
pub struct SnapshotAppender {
    writer: Mutex<BufWriter<File>>,
}

impl SnapshotAppender {
    /// Append one computed outcome; flushed immediately so a crash loses
    /// at most the record being written (which the checksum then drops on
    /// the next load).
    pub fn append(&self, key: u64, class: OutcomeClass, rg_nodes: u64, payload: &[u8]) {
        let record = WireSnapshotRecord {
            key,
            class: class_ordinal(class),
            rg_nodes,
            payload: payload.to_vec(),
        };
        let bytes = encode_snapshot_record(&record);
        let mut w = self.writer.lock().unwrap();
        // a failed append degrades persistence, never serving
        let _ = w.write_all(&bytes).and_then(|_| w.flush());
    }
}

fn class_ordinal(class: OutcomeClass) -> u8 {
    match class {
        OutcomeClass::Exact => 0,
        OutcomeClass::Degraded => 1,
        OutcomeClass::Cached => 2,
        OutcomeClass::BudgetExhausted => 3,
        OutcomeClass::DeadlineHit => 4,
        OutcomeClass::Error => 5,
    }
}

fn class_from_ordinal(v: u8) -> Option<OutcomeClass> {
    Some(match v {
        0 => OutcomeClass::Exact,
        1 => OutcomeClass::Degraded,
        2 => OutcomeClass::Cached,
        3 => OutcomeClass::BudgetExhausted,
        4 => OutcomeClass::DeadlineHit,
        5 => OutcomeClass::Error,
        _ => return None,
    })
}

/// Open (or create) a snapshot file for the given configuration
/// fingerprint, load its valid prefix, and return the entries plus an
/// appender positioned after them.
pub fn open_snapshot(path: &Path, fingerprint: u64) -> io::Result<SnapshotFile> {
    // truncate(false): existing contents are the point — the valid prefix
    // is loaded and anything after it cut below
    let mut file =
        OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;

    let mut loaded = Vec::new();
    let valid_len = if bytes.is_empty() {
        // fresh file: write the header now
        file.write_all(&encode_snapshot_header(fingerprint))?;
        SNAPSHOT_HEADER_LEN as u64
    } else {
        match decode_snapshot_header(&bytes) {
            Ok(fp) if fp == fingerprint => {
                let mut offset = SNAPSHOT_HEADER_LEN;
                while offset < bytes.len() {
                    match decode_snapshot_record(&bytes[offset..]) {
                        Ok((record, used)) => {
                            let Some(class) = class_from_ordinal(record.class) else { break };
                            // checksummed bytes must still satisfy the
                            // outcome codec before the cache trusts them
                            if decode_outcome(&record.payload).is_err() {
                                break;
                            }
                            loaded.push(LoadedOutcome {
                                key: record.key,
                                class,
                                rg_nodes: record.rg_nodes,
                                payload: record.payload,
                            });
                            offset += used;
                        }
                        Err(_) => break,
                    }
                }
                offset as u64
            }
            _ => {
                // wrong fingerprint, unknown version, or mangled header:
                // cold start with a fresh header
                file.set_len(0)?;
                file.seek(SeekFrom::Start(0))?;
                file.write_all(&encode_snapshot_header(fingerprint))?;
                SNAPSHOT_HEADER_LEN as u64
            }
        }
    };

    // drop any corrupt tail so future appends extend a well-formed file
    file.set_len(valid_len)?;
    file.seek(SeekFrom::Start(valid_len))?;
    Ok(SnapshotFile {
        loaded,
        appender: SnapshotAppender { writer: Mutex::new(BufWriter::new(file)) },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sekitei_spec::{encode_outcome, WireOutcome};

    fn sample_payload(bound: f64) -> Vec<u8> {
        encode_outcome(&WireOutcome {
            plan: None,
            best_bound: Some(bound),
            optimality_gap: None,
            stats: Default::default(),
            certificate: None,
        })
        .to_vec()
    }

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sekitei_persist_{tag}_{}.sks", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn roundtrip_across_reopen() {
        let path = tmp_path("roundtrip");
        let fp = 42;
        {
            let snap = open_snapshot(&path, fp).unwrap();
            assert!(snap.loaded.is_empty());
            snap.appender.append(7, OutcomeClass::Exact, 100, &sample_payload(1.5));
            snap.appender.append(9, OutcomeClass::BudgetExhausted, 2000, &sample_payload(3.0));
        }
        let snap = open_snapshot(&path, fp).unwrap();
        assert_eq!(snap.loaded.len(), 2);
        assert_eq!(snap.loaded[0].key, 7);
        assert_eq!(snap.loaded[0].class, OutcomeClass::Exact);
        assert_eq!(snap.loaded[1].key, 9);
        assert_eq!(snap.loaded[1].rg_nodes, 2000);
        assert!(decode_outcome(&snap.loaded[1].payload).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_mismatch_cold_starts() {
        let path = tmp_path("fingerprint");
        {
            let snap = open_snapshot(&path, 1).unwrap();
            snap.appender.append(7, OutcomeClass::Exact, 1, &sample_payload(1.0));
        }
        // different planner config → nothing loads, file is reset
        let snap = open_snapshot(&path, 2).unwrap();
        assert!(snap.loaded.is_empty());
        drop(snap);
        // and the reset file now carries the *new* fingerprint
        let snap = open_snapshot(&path, 2).unwrap();
        assert!(snap.loaded.is_empty());
        snap.appender.append(8, OutcomeClass::Exact, 1, &sample_payload(2.0));
        drop(snap);
        let snap = open_snapshot(&path, 2).unwrap();
        assert_eq!(snap.loaded.len(), 1);
        assert_eq!(snap.loaded[0].key, 8);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_loads_valid_prefix_and_truncates() {
        let path = tmp_path("torn");
        let fp = 9;
        {
            let snap = open_snapshot(&path, fp).unwrap();
            snap.appender.append(1, OutcomeClass::Exact, 10, &sample_payload(1.0));
            snap.appender.append(2, OutcomeClass::Exact, 20, &sample_payload(2.0));
        }
        // tear the last record mid-write
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 11]).unwrap();
        let snap = open_snapshot(&path, fp).unwrap();
        assert_eq!(snap.loaded.len(), 1, "valid prefix only");
        assert_eq!(snap.loaded[0].key, 1);
        // appending after the truncation extends a well-formed file
        snap.appender.append(3, OutcomeClass::Exact, 30, &sample_payload(3.0));
        drop(snap);
        let snap = open_snapshot(&path, fp).unwrap();
        let keys: Vec<u64> = snap.loaded.iter().map(|l| l.key).collect();
        assert_eq!(keys, vec![1, 3]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn seeded_corruption_never_panics_or_serves_garbage() {
        // proptest-style seeded sweep without the dependency: flip bytes
        // at pseudo-random offsets across the whole file; every variant
        // must load cleanly (possibly empty), never panic, and every
        // entry that does load must decode as a valid outcome
        let path = tmp_path("fuzz");
        let fp = 77;
        {
            let snap = open_snapshot(&path, fp).unwrap();
            for k in 0..6u64 {
                snap.appender.append(k, OutcomeClass::Exact, k * 7, &sample_payload(k as f64));
            }
        }
        let pristine = std::fs::read(&path).unwrap();
        let mut state: u64 = 0xDEAD_BEEF_1234_5678;
        for round in 0..64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let mut corrupt = pristine.clone();
            let pos = (state % corrupt.len() as u64) as usize;
            corrupt[pos] ^= 1 << (state >> 32 & 7);
            // also test hard truncation every few rounds
            if round % 4 == 0 {
                corrupt.truncate(pos);
            }
            std::fs::write(&path, &corrupt).unwrap();
            let snap = open_snapshot(&path, fp).unwrap();
            for entry in &snap.loaded {
                decode_outcome(&entry.payload).expect("loaded entries always decode");
            }
            assert!(snap.loaded.len() <= 6);
        }
        let _ = std::fs::remove_file(&path);
    }
}
