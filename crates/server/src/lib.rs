//! # sekitei-server
//!
//! A long-running planning service over the Sekitei planner: the ROADMAP's
//! "serves heavy traffic" north star applied to PR 1's batch machinery.
//!
//! Std-only TCP serving — no async runtime, no external dependencies:
//!
//! - [`protocol`] — length-prefixed frames carrying `spec::wire` payloads
//!   (`SKT1` problems in, `SKO1` outcomes out) plus small control frames
//!   (`/stats`, shutdown).
//! - [`cache`] — two content-addressed tiers keyed by the hash of the
//!   encoded problem: compiled tasks (skip grounding/leveling) and
//!   completed outcomes (skip everything), the outcome tier under CLOCK
//!   eviction.
//! - [`persist`] — an append-only checksummed snapshot of the outcome
//!   tier (`SKS1`), replayed on start so a restart keeps its warm hit
//!   rate.
//! - [`server`] — a nonblocking acceptor round-robining connections over
//!   accept/worker shards, each owning a queue, a fingerprint-partitioned
//!   cache stripe with single-flight request coalescing, stats, and a
//!   flight ring; every request plans under a wall-clock deadline with
//!   graceful degradation and priority-aware shedding under pressure.
//! - [`client`] — blocking request helpers used by `sekitei request` and
//!   the benches.
//! - [`flight`] — a bounded ring of per-request records with
//!   per-latency-bucket exemplars, dumpable over the control protocol for
//!   tail-latency post-mortems.
//! - [`loadgen`] — a seeded open/closed-loop load generator (Zipf over a
//!   scenario corpus, bursts, pipelining) reporting sustained req/s and
//!   p50/p99/p99.9 from merged obs histogram shards.
//!
//! The telemetry plane ties these together: plan requests carry a
//! client-assigned trace id that the server echoes, tags onto its spans,
//! and writes into every flight record; `Metrics` control frames scrape
//! the live [`ServerStats`] registry as a text exposition; and profile
//! replies return the per-phase self-time table (`SKP1`) so a client can
//! stitch server phases into its own trace.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
pub mod convert;
pub mod flight;
pub mod loadgen;
pub mod persist;
pub mod protocol;
pub mod server;
pub mod stats;

pub use cache::{content_hash, BoundedCache, ClockCache};
pub use client::{
    request_flight_recorder, request_metrics, request_plan, request_shutdown, request_stats,
    ClientError, Connection, ServedOutcome,
};
pub use convert::outcome_to_wire;
pub use flight::{
    merged_dump, parse_dump, CacheTier, Exemplar, FlightDump, FlightRecord, FlightRecorder,
    OutcomeClass,
};
pub use loadgen::{LoadReport, LoadgenConfig, ScenarioItem};
pub use persist::{
    config_fingerprint, open_snapshot, LoadedOutcome, SnapshotAppender, SnapshotFile,
};
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, frame_into, read_frame,
    write_frame, Priority, Request, Response, ServedVia, StatsSnapshot, MAX_FRAME,
};
pub use server::{Server, ServerConfig, ShutdownHandle};
pub use stats::ServerStats;
