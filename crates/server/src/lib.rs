//! # sekitei-server
//!
//! A long-running planning service over the Sekitei planner: the ROADMAP's
//! "serves heavy traffic" north star applied to PR 1's batch machinery.
//!
//! Std-only TCP serving — no async runtime, no external dependencies:
//!
//! - [`protocol`] — length-prefixed frames carrying `spec::wire` payloads
//!   (`SKT1` problems in, `SKO1` outcomes out) plus small control frames
//!   (`/stats`, shutdown).
//! - [`cache`] — two content-addressed tiers keyed by the hash of the
//!   encoded problem: compiled tasks (skip grounding/leveling) and
//!   completed outcomes (skip everything).
//! - [`server`] — a nonblocking acceptor with queue-depth admission
//!   control feeding scoped worker threads; every request plans under a
//!   wall-clock deadline with graceful degradation (best-so-far bound plus
//!   a sim-validated greedy-candidate plan instead of an error).
//! - [`client`] — blocking request helpers used by `sekitei request` and
//!   the benches.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
pub mod convert;
pub mod protocol;
pub mod server;
pub mod stats;

pub use cache::{content_hash, BoundedCache};
pub use client::{request_plan, request_shutdown, request_stats, ClientError, Connection};
pub use convert::outcome_to_wire;
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    Request, Response, StatsSnapshot, MAX_FRAME,
};
pub use server::{Server, ServerConfig, ShutdownHandle};
pub use stats::ServerStats;
