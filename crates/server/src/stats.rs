//! Serving metrics: a [`MetricsRegistry`] of named counters and
//! histograms behind the same recording API as before.
//!
//! Latency percentiles come from `sekitei-obs` log-linear histograms
//! instead of the old bounded sample ring. That fixes the sparse-window
//! estimate for good — an empty population reports 0 and a partially
//! filled one is summarized over exactly the samples recorded, with no
//! window-fill assumptions — at the cost of the window's recency bias:
//! the histogram summarizes the server's lifetime, which is what the
//! stats protocol reports were already treated as.

use crate::flight::OutcomeClass;
use crate::protocol::StatsSnapshot;
use sekitei_obs::{Counter, Gauge, Histogram, MetricView, MetricsRegistry};
use std::fmt;
use std::sync::Arc;

/// Shared serving metrics. All methods take `&self` and record lock-free
/// through pre-resolved registry handles.
pub struct ServerStats {
    registry: MetricsRegistry,
    served: Arc<Counter>,
    cache_hits: Arc<Counter>,
    task_cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    degraded: Arc<Counter>,
    coalesced: Arc<Counter>,
    rejected: Arc<Counter>,
    queue_shed: Arc<Counter>,
    queue_shed_low: Arc<Counter>,
    queue_shed_normal: Arc<Counter>,
    /// One counter per outcome class, indexed in the order the
    /// `StatsSnapshot` wire fields list them.
    class_exact: Arc<Counter>,
    class_degraded: Arc<Counter>,
    class_cached: Arc<Counter>,
    class_budget_exhausted: Arc<Counter>,
    class_deadline_hit: Arc<Counter>,
    class_error: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    latency_us: Arc<Histogram>,
    queue_wait_us: Arc<Histogram>,
}

impl Default for ServerStats {
    fn default() -> Self {
        let registry = MetricsRegistry::new();
        let served = registry.counter("served");
        let cache_hits = registry.counter("cache_hits");
        let task_cache_hits = registry.counter("task_cache_hits");
        let cache_misses = registry.counter("cache_misses");
        let degraded = registry.counter("degraded");
        let coalesced = registry.counter("coalesced");
        let rejected = registry.counter("rejected");
        let queue_shed = registry.counter("queue_shed");
        let queue_shed_low = registry.counter("queue_shed_low");
        let queue_shed_normal = registry.counter("queue_shed_normal");
        let class_exact = registry.counter("class_exact");
        let class_degraded = registry.counter("class_degraded");
        let class_cached = registry.counter("class_cached");
        let class_budget_exhausted = registry.counter("class_budget_exhausted");
        let class_deadline_hit = registry.counter("class_deadline_hit");
        let class_error = registry.counter("class_error");
        let queue_depth = registry.gauge("queue_depth");
        let latency_us = registry.histogram("latency_us");
        let queue_wait_us = registry.histogram("queue_wait_us");
        ServerStats {
            registry,
            served,
            cache_hits,
            task_cache_hits,
            cache_misses,
            degraded,
            coalesced,
            rejected,
            queue_shed,
            queue_shed_low,
            queue_shed_normal,
            class_exact,
            class_degraded,
            class_cached,
            class_budget_exhausted,
            class_deadline_hit,
            class_error,
            queue_depth,
            latency_us,
            queue_wait_us,
        }
    }
}

impl fmt::Debug for ServerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ServerStats({:?})", self.snapshot())
    }
}

impl ServerStats {
    /// Count a served plan request and record its latency.
    pub fn record_served(&self, latency_us: u64) {
        self.served.inc();
        self.latency_us.record(latency_us);
    }

    /// Record how long a connection waited in the accept queue before a
    /// worker picked it up.
    pub fn record_queue_wait(&self, wait_us: u64) {
        self.queue_wait_us.record(wait_us);
    }

    /// Count an outcome-cache hit.
    pub fn record_cache_hit(&self) {
        self.cache_hits.inc();
    }

    /// Count a compiled-task-tier hit (search still ran).
    pub fn record_task_cache_hit(&self) {
        self.task_cache_hits.inc();
    }

    /// Count a full-path miss.
    pub fn record_cache_miss(&self) {
        self.cache_misses.inc();
    }

    /// Count a degraded response.
    pub fn record_degraded(&self) {
        self.degraded.inc();
    }

    /// Count an admission-control rejection.
    pub fn record_rejected(&self) {
        self.rejected.inc();
    }

    /// Count a request answered by joining another request's in-flight
    /// search (single-flight fan-out).
    pub fn record_coalesced(&self) {
        self.coalesced.inc();
    }

    /// Count a plan request shed by the priority gate under queue
    /// pressure; the per-priority counters live only in the registry.
    pub fn record_shed(&self, priority: crate::protocol::Priority) {
        self.queue_shed.inc();
        match priority {
            crate::protocol::Priority::Low => self.queue_shed_low.inc(),
            crate::protocol::Priority::Normal => self.queue_shed_normal.inc(),
            crate::protocol::Priority::High => {}
        }
    }

    /// Count one plan request's outcome class. Each request lands in
    /// exactly one class (`Cached` for outcome-cache hits, otherwise the
    /// content class of the computed outcome), so the six class counters
    /// partition the plan requests handled.
    pub fn record_class(&self, class: OutcomeClass) {
        match class {
            OutcomeClass::Exact => self.class_exact.inc(),
            OutcomeClass::Degraded => self.class_degraded.inc(),
            OutcomeClass::Cached => self.class_cached.inc(),
            OutcomeClass::BudgetExhausted => self.class_budget_exhausted.inc(),
            OutcomeClass::DeadlineHit => self.class_deadline_hit.inc(),
            OutcomeClass::Error => self.class_error.inc(),
        }
    }

    /// Publish the current accept-queue depth (connections waiting for a
    /// worker).
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.set(depth as i64);
    }

    /// The underlying registry (for rendering every metric by name).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Snapshot every counter plus latency and queue-wait summaries.
    /// Percentiles are histogram bucket lower bounds (within 1/32
    /// relative error); an empty population reports 0 everywhere.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            served: self.served.get(),
            cache_hits: self.cache_hits.get(),
            task_cache_hits: self.task_cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            degraded: self.degraded.get(),
            coalesced: self.coalesced.get(),
            rejected: self.rejected.get(),
            queue_shed: self.queue_shed.get(),
            p50_us: self.latency_us.quantile(0.50),
            p95_us: self.latency_us.quantile(0.95),
            p99_us: self.latency_us.quantile(0.99),
            max_us: self.latency_us.max(),
            queue_p50_us: self.queue_wait_us.quantile(0.50),
            queue_p99_us: self.queue_wait_us.quantile(0.99),
            class_exact: self.class_exact.get(),
            class_degraded: self.class_degraded.get(),
            class_cached: self.class_cached.get(),
            class_budget_exhausted: self.class_budget_exhausted.get(),
            class_deadline_hit: self.class_deadline_hit.get(),
            class_error: self.class_error.get(),
        }
    }

    /// Aggregate per-shard stats into one snapshot: counters sum,
    /// histograms merge exactly (`Histogram::merge` adds bucket counts),
    /// and percentiles are derived from the merged populations — the
    /// result is identical to what a single global `ServerStats` would
    /// have reported for the same traffic.
    pub fn merged_snapshot(shards: &[Arc<ServerStats>]) -> StatsSnapshot {
        let merged = ServerStats::default();
        for s in shards {
            merged.served.add(s.served.get());
            merged.cache_hits.add(s.cache_hits.get());
            merged.task_cache_hits.add(s.task_cache_hits.get());
            merged.cache_misses.add(s.cache_misses.get());
            merged.degraded.add(s.degraded.get());
            merged.coalesced.add(s.coalesced.get());
            merged.rejected.add(s.rejected.get());
            merged.queue_shed.add(s.queue_shed.get());
            merged.class_exact.add(s.class_exact.get());
            merged.class_degraded.add(s.class_degraded.get());
            merged.class_cached.add(s.class_cached.get());
            merged.class_budget_exhausted.add(s.class_budget_exhausted.get());
            merged.class_deadline_hit.add(s.class_deadline_hit.get());
            merged.class_error.add(s.class_error.get());
            merged.latency_us.merge(&s.latency_us);
            merged.queue_wait_us.merge(&s.queue_wait_us);
        }
        merged.snapshot()
    }

    /// Aggregate per-shard registries into one scrape-ready registry:
    /// same-named counters sum, gauges sum (queue depth across shards is
    /// the total backlog), histograms merge. Walks each source registry
    /// under its own lock while writing into a fresh one.
    pub fn merged_registry(shards: &[Arc<ServerStats>]) -> MetricsRegistry {
        let out = MetricsRegistry::new();
        for s in shards {
            s.registry.for_each(|name, view| match view {
                MetricView::Counter(v) => out.counter(name).add(v),
                MetricView::Gauge(v) => out.gauge(name).add(v),
                MetricView::Histogram(h) => out.histogram(name).merge(h),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sekitei_obs::{bucket_bounds, bucket_index};

    #[test]
    fn percentiles_over_population() {
        let s = ServerStats::default();
        for us in 1..=100 {
            s.record_served(us);
        }
        let snap = s.snapshot();
        assert_eq!(snap.served, 100);
        // below 64 µs the histogram is exact; above, within one bucket
        assert_eq!(snap.p50_us, 50);
        let (lo, _) = bucket_bounds(bucket_index(99));
        assert_eq!(snap.p99_us, lo, "p99 reports the bucket of the exact 99");
        assert!((98..=99).contains(&snap.p99_us));
        assert_eq!(snap.max_us, 100);
    }

    #[test]
    fn empty_population_yields_zero_percentiles() {
        let snap = ServerStats::default().snapshot();
        assert_eq!((snap.p50_us, snap.p95_us, snap.p99_us, snap.max_us), (0, 0, 0, 0));
        assert_eq!((snap.queue_p50_us, snap.queue_p99_us), (0, 0));
    }

    #[test]
    fn sparse_population_is_summarized_exactly() {
        // the old ring indexed `len * q` into a sorted clone, which is
        // where sparse windows used to go wrong — with a histogram the
        // percentile of N samples is always over exactly N samples
        let s = ServerStats::default();
        s.record_served(10);
        let snap = s.snapshot();
        assert_eq!(snap.p50_us, 10, "a single sample is every percentile");
        assert_eq!(snap.p99_us, 10);
        assert_eq!(snap.max_us, 10);
        s.record_served(30);
        s.record_served(20);
        let snap = s.snapshot();
        assert_eq!(snap.p50_us, 20);
        assert_eq!(snap.p99_us, 30);
    }

    #[test]
    fn queue_wait_summarized_separately() {
        let s = ServerStats::default();
        s.record_queue_wait(5);
        s.record_queue_wait(7);
        s.record_served(1_000);
        let snap = s.snapshot();
        assert_eq!(snap.queue_p50_us, 5);
        assert_eq!(snap.queue_p99_us, 7);
        assert!(snap.p50_us >= 1_000 - 1_000 / 32, "latency unaffected by queue waits");
    }

    #[test]
    fn registry_renders_every_metric() {
        let s = ServerStats::default();
        s.record_served(42);
        s.record_rejected();
        let text = s.registry().to_string();
        for name in [
            "served",
            "cache_hits",
            "task_cache_hits",
            "cache_misses",
            "degraded",
            "rejected",
            "class_exact",
            "class_error",
            "queue_depth",
            "latency_us",
            "queue_wait_us",
        ] {
            assert!(text.contains(name), "{name} missing from: {text}");
        }
    }

    #[test]
    fn class_counters_partition_into_snapshot() {
        let s = ServerStats::default();
        for class in [
            OutcomeClass::Exact,
            OutcomeClass::Exact,
            OutcomeClass::Degraded,
            OutcomeClass::Cached,
            OutcomeClass::BudgetExhausted,
            OutcomeClass::DeadlineHit,
            OutcomeClass::Error,
        ] {
            s.record_class(class);
        }
        let snap = s.snapshot();
        assert_eq!(snap.class_exact, 2);
        assert_eq!(snap.class_degraded, 1);
        assert_eq!(snap.class_cached, 1);
        assert_eq!(snap.class_budget_exhausted, 1);
        assert_eq!(snap.class_deadline_hit, 1);
        assert_eq!(snap.class_error, 1);
        let total = snap.class_exact
            + snap.class_degraded
            + snap.class_cached
            + snap.class_budget_exhausted
            + snap.class_deadline_hit
            + snap.class_error;
        assert_eq!(total, 7);
    }

    #[test]
    fn shed_and_coalesced_counters_surface_everywhere() {
        use crate::protocol::Priority;
        let s = ServerStats::default();
        s.record_coalesced();
        s.record_coalesced();
        s.record_shed(Priority::Low);
        s.record_shed(Priority::Normal);
        s.record_shed(Priority::Low);
        let snap = s.snapshot();
        assert_eq!(snap.coalesced, 2);
        assert_eq!(snap.queue_shed, 3);
        let parsed = sekitei_obs::parse_exposition(&sekitei_obs::expose(s.registry())).unwrap();
        assert_eq!(parsed.counters["coalesced"], 2);
        assert_eq!(parsed.counters["queue_shed"], 3);
        assert_eq!(parsed.counters["queue_shed_low"], 2);
        assert_eq!(parsed.counters["queue_shed_normal"], 1);
    }

    #[test]
    fn merged_snapshot_equals_single_stats_over_same_traffic() {
        let a = Arc::new(ServerStats::default());
        let b = Arc::new(ServerStats::default());
        let single = ServerStats::default();
        for (i, target) in [(1u64, &a), (2, &b), (3, &a), (4, &b), (5, &a)] {
            target.record_served(i * 100);
            target.record_class(OutcomeClass::Exact);
            single.record_served(i * 100);
            single.record_class(OutcomeClass::Exact);
        }
        a.record_queue_wait(10);
        b.record_queue_wait(90);
        single.record_queue_wait(10);
        single.record_queue_wait(90);
        b.record_cache_hit();
        single.record_cache_hit();
        let merged = ServerStats::merged_snapshot(&[a.clone(), b.clone()]);
        assert_eq!(merged, single.snapshot());
        assert_eq!(merged.served, 5);
        assert_eq!(merged.cache_hits, 1);

        // the merged registry view agrees with the merged snapshot
        let reg = ServerStats::merged_registry(&[a, b]);
        let parsed = sekitei_obs::parse_exposition(&sekitei_obs::expose(&reg)).unwrap();
        assert_eq!(parsed.counters["served"], 5);
        assert_eq!(parsed.histograms["latency_us"].count, 5);
        assert_eq!(parsed.histograms["queue_wait_us"].count, 2);
    }

    #[test]
    fn exposition_carries_live_registry() {
        let s = ServerStats::default();
        s.record_served(100);
        s.set_queue_depth(3);
        let text = sekitei_obs::expose(s.registry());
        let parsed = sekitei_obs::parse_exposition(&text).unwrap();
        assert_eq!(parsed.counters["served"], 1);
        assert_eq!(parsed.gauges["queue_depth"], 3);
        assert_eq!(parsed.histograms["latency_us"].count, 1);
    }
}
