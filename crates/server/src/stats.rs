//! Serving counters: lock-free tallies plus a bounded latency window for
//! percentile estimates.

use crate::protocol::StatsSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How many recent plan latencies the percentile window keeps. Old samples
/// are overwritten ring-style, so p50/p99 always describe recent traffic.
const LATENCY_WINDOW: usize = 4096;

/// Shared serving counters. All methods take `&self`; the latency ring is
/// the only lock and is held for a few instructions.
#[derive(Debug, Default)]
pub struct ServerStats {
    served: AtomicU64,
    cache_hits: AtomicU64,
    task_cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    degraded: AtomicU64,
    rejected: AtomicU64,
    latencies: Mutex<LatencyRing>,
}

#[derive(Debug, Default)]
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

impl ServerStats {
    /// Count a served plan request and record its latency.
    pub fn record_served(&self, latency_us: u64) {
        self.served.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.latencies.lock().unwrap();
        if ring.samples.len() < LATENCY_WINDOW {
            ring.samples.push(latency_us);
        } else {
            let i = ring.next;
            ring.samples[i] = latency_us;
        }
        ring.next = (ring.next + 1) % LATENCY_WINDOW;
    }

    /// Count an outcome-cache hit.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a compiled-task-tier hit (search still ran).
    pub fn record_task_cache_hit(&self) {
        self.task_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a full-path miss.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a degraded response.
    pub fn record_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Count an admission-control rejection.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot every counter plus latency percentiles over the window.
    pub fn snapshot(&self) -> StatsSnapshot {
        let (p50_us, p99_us) = {
            let ring = self.latencies.lock().unwrap();
            let mut sorted = ring.samples.clone();
            drop(ring);
            sorted.sort_unstable();
            if sorted.is_empty() {
                (0, 0)
            } else {
                // nearest-rank: p50 of 1..=100 is 50, p99 is 99
                let pick = |q: f64| sorted[(sorted.len() as f64 * q).ceil() as usize - 1];
                (pick(0.50), pick(0.99))
            }
        };
        StatsSnapshot {
            served: self.served.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            task_cache_hits: self.task_cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            p50_us,
            p99_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_over_window() {
        let s = ServerStats::default();
        for us in 1..=100 {
            s.record_served(us);
        }
        let snap = s.snapshot();
        assert_eq!(snap.served, 100);
        assert_eq!(snap.p50_us, 50);
        assert_eq!(snap.p99_us, 99);
    }

    #[test]
    fn empty_window_yields_zero_percentiles() {
        let snap = ServerStats::default().snapshot();
        assert_eq!((snap.p50_us, snap.p99_us), (0, 0));
    }

    #[test]
    fn window_overwrites_oldest() {
        let s = ServerStats::default();
        // fill the window with slow samples, then overwrite with fast ones
        for _ in 0..LATENCY_WINDOW {
            s.record_served(1_000_000);
        }
        for _ in 0..LATENCY_WINDOW {
            s.record_served(10);
        }
        let snap = s.snapshot();
        assert_eq!(snap.p99_us, 10, "old samples must age out");
        assert_eq!(snap.served, 2 * LATENCY_WINDOW as u64);
    }
}
