//! Planner-to-wire conversion.
//!
//! Lives here rather than in `sekitei-spec` because the spec crate sits
//! below the compiler and planner in the dependency order — the wire
//! outcome types are self-contained mirrors, and this is the one place
//! that knows both sides.

use sekitei_compile::ActionKind;
use sekitei_planner::PlanOutcome;
use sekitei_spec::{WireOutcome, WirePlan, WireStats, WireStep, WireStepKind};

/// Project a [`PlanOutcome`] onto its wire form.
pub fn outcome_to_wire(o: &PlanOutcome) -> WireOutcome {
    WireOutcome {
        plan: o.plan.as_ref().map(|p| WirePlan {
            steps: p
                .steps
                .iter()
                .map(|s| WireStep {
                    name: s.name.clone(),
                    kind: match s.kind {
                        ActionKind::Place { .. } => WireStepKind::Place,
                        ActionKind::Cross { .. } => WireStepKind::Cross,
                    },
                    cost_lb: s.cost_lb,
                })
                .collect(),
            cost_lower_bound: p.cost_lower_bound,
            degraded: p.degraded,
            source_values: p
                .execution
                .source_values
                .iter()
                .map(|&(v, x)| (v.index() as u32, x))
                .collect(),
        }),
        best_bound: o.stats.best_bound,
        optimality_gap: o.stats.optimality_gap,
        stats: WireStats {
            total_actions: o.stats.total_actions as u64,
            plrg_props: o.stats.plrg_props as u64,
            plrg_actions: o.stats.plrg_actions as u64,
            slrg_nodes: o.stats.slrg_nodes as u64,
            rg_nodes: o.stats.rg_nodes as u64,
            rg_open_left: o.stats.rg_open_left as u64,
            replay_prunes: o.stats.replay_prunes as u64,
            candidate_rejects: o.stats.candidate_rejects as u64,
            total_time_us: o.stats.total_time.as_micros() as u64,
            search_time_us: o.stats.search_time.as_micros() as u64,
            budget_exhausted: o.stats.budget_exhausted,
            deadline_hit: o.stats.deadline_hit,
        },
        certificate: o
            .plan
            .as_ref()
            .and_then(|p| p.certificate.as_ref())
            .map(sekitei_cert::encode_certificate),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sekitei_model::LevelScenario;
    use sekitei_planner::{Planner, PlannerConfig};
    use sekitei_spec::{decode_outcome, encode_outcome};
    use sekitei_topology::scenarios;

    #[test]
    fn real_outcome_survives_the_wire() {
        let outcome = Planner::default().plan(&scenarios::tiny(LevelScenario::C)).unwrap();
        let wire = outcome_to_wire(&outcome);
        let plan = wire.plan.as_ref().unwrap();
        assert_eq!(plan.steps.len(), 7);
        assert_eq!(plan.steps.iter().filter(|s| s.kind == WireStepKind::Place).count(), 5);
        assert_eq!(plan.steps.iter().filter(|s| s.kind == WireStepKind::Cross).count(), 2);
        assert!(!plan.degraded);
        assert_eq!(wire.stats.rg_nodes, outcome.stats.rg_nodes as u64);
        let rt = decode_outcome(&encode_outcome(&wire)).unwrap();
        assert_eq!(wire, rt);
    }

    #[test]
    fn degraded_outcome_carries_flag_and_bound() {
        let planner = Planner::new(PlannerConfig { degrade: true, ..Default::default() });
        let outcome = planner.plan(&scenarios::tiny(LevelScenario::A)).unwrap();
        let wire = outcome_to_wire(&outcome);
        assert!(wire.plan.as_ref().unwrap().degraded);
        assert!(wire.stats.budget_exhausted || wire.best_bound.is_none());
    }
}
