//! Tail-latency flight recorder: a bounded in-memory ring of per-request
//! records, dumpable over the control protocol.
//!
//! Aggregate histograms answer "what does the p99.9 look like"; the
//! flight recorder answers "what was the p99.9 *request*". Every served
//! plan request (including errors) appends one fixed-size record —
//! problem fingerprint, outcome class, cache tier, queue wait, RG nodes,
//! latency, trace id — to a ring that keeps the most recent
//! `cap` requests. The dump derives per-latency-bucket *exemplars* from
//! the ring (the most recent in-ring request in each occupied bucket), so
//! every bucket in the dump links to a concrete recorded request by trace
//! id — resolvable by construction, never a dangling pointer to an
//! evicted record (a trace id without its record can't support a
//! post-mortem anyway).
//!
//! The dump is a versioned line-oriented text format in the same spirit
//! as the metrics exposition ([`sekitei_obs::expo`]):
//!
//! ```text
//! # sekitei-flight v1
//! record seq=4 trace=71 fp=00c5a2… class=exact tier=full queue_us=12 rg_nodes=420 latency_us=913
//! exemplar bucket=448 lo=896 hi=928 trace=71 latency_us=913
//! # end sekitei-flight records=1 exemplars=1 evicted=3
//! ```
//!
//! [`parse_dump`] is the strict inverse and *validates the exemplar
//! invariant*: every exemplar must name the trace id and latency of an
//! in-dump record whose latency falls in the exemplar's bucket.

use sekitei_obs::{bucket_bounds, bucket_index};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Which of the six serving outcome classes a request landed in. One
/// class per request; `Exact` includes proven-infeasible answers ("no
/// plan exists" is an exact result).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeClass {
    /// Proven-optimal plan or proven infeasibility.
    Exact,
    /// Plan served through the graceful-degradation / anytime-incumbent
    /// path.
    Degraded,
    /// Answered from the outcome cache. Flight records keep the *content*
    /// class of the cached outcome instead (the replayed bytes have one);
    /// this class appears in the stats partition, where the cache hit is
    /// the event of interest.
    Cached,
    /// A search budget (nodes/rejects) was exhausted.
    BudgetExhausted,
    /// The wall-clock deadline cut the search short.
    DeadlineHit,
    /// The request failed (malformed problem, compile error, …).
    Error,
}

impl OutcomeClass {
    /// Dump-format token for this class.
    pub fn as_str(&self) -> &'static str {
        match self {
            OutcomeClass::Exact => "exact",
            OutcomeClass::Degraded => "degraded",
            OutcomeClass::Cached => "cached",
            OutcomeClass::BudgetExhausted => "budget_exhausted",
            OutcomeClass::DeadlineHit => "deadline_hit",
            OutcomeClass::Error => "error",
        }
    }

    /// Inverse of [`OutcomeClass::as_str`].
    pub fn parse(s: &str) -> Option<OutcomeClass> {
        Some(match s {
            "exact" => OutcomeClass::Exact,
            "degraded" => OutcomeClass::Degraded,
            "cached" => OutcomeClass::Cached,
            "budget_exhausted" => OutcomeClass::BudgetExhausted,
            "deadline_hit" => OutcomeClass::DeadlineHit,
            "error" => OutcomeClass::Error,
            _ => return None,
        })
    }

    /// Classify a computed outcome's *content*: precedence
    /// deadline > budget > degraded, and `Exact` covers both optimal
    /// plans and proven-infeasible answers (the planner finished its
    /// job either way). `Cached`/`Error` never come from here — they
    /// describe how the request was answered, not what the planner
    /// produced.
    pub fn of_outcome(wire: &sekitei_spec::WireOutcome) -> OutcomeClass {
        if wire.stats.deadline_hit {
            OutcomeClass::DeadlineHit
        } else if wire.stats.budget_exhausted {
            OutcomeClass::BudgetExhausted
        } else if wire.plan.as_ref().is_some_and(|p| p.degraded) {
            OutcomeClass::Degraded
        } else {
            OutcomeClass::Exact
        }
    }
}

impl fmt::Display for OutcomeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which cache tier answered the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// Outcome cache: encoded bytes replayed, no planner run.
    Outcome,
    /// Compiled-task cache: grounding/leveling skipped, search ran.
    Task,
    /// Full path: decode + compile + search.
    Full,
}

impl CacheTier {
    /// Dump-format token for this tier.
    pub fn as_str(&self) -> &'static str {
        match self {
            CacheTier::Outcome => "outcome",
            CacheTier::Task => "task",
            CacheTier::Full => "full",
        }
    }

    /// Inverse of [`CacheTier::as_str`].
    pub fn parse(s: &str) -> Option<CacheTier> {
        Some(match s {
            "outcome" => CacheTier::Outcome,
            "task" => CacheTier::Task,
            "full" => CacheTier::Full,
            _ => return None,
        })
    }
}

impl fmt::Display for CacheTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightRecord {
    /// Monotonic sequence number (1-based, never reused); `seq` of the
    /// oldest in-ring record minus 1 is the evicted count.
    pub seq: u64,
    /// Client-assigned trace id (0 = unassigned).
    pub trace_id: u64,
    /// Content hash of the SKT1 problem bytes (the cache key).
    pub fingerprint: u64,
    /// Outcome class (content class for cached responses).
    pub class: OutcomeClass,
    /// Cache tier that answered.
    pub tier: CacheTier,
    /// Accept-queue wait of the carrying connection, microseconds.
    pub queue_wait_us: u64,
    /// RG nodes the search created (0 for cache hits and errors).
    pub rg_nodes: u64,
    /// End-to-end server-side latency, microseconds.
    pub latency_us: u64,
}

/// A per-latency-bucket exemplar: the most recent in-ring request whose
/// latency fell in this bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// Histogram bucket index (see [`sekitei_obs::bucket_index`]).
    pub bucket: usize,
    /// Inclusive lower bound of the bucket.
    pub lo: u64,
    /// Exclusive upper bound of the bucket.
    pub hi: u64,
    /// Trace id of the exemplar request.
    pub trace_id: u64,
    /// Its recorded latency (within `[lo, hi)`).
    pub latency_us: u64,
}

/// Bounded ring of recent requests. `record` is O(1) under a mutex.
/// Sequence numbers come from an [`Arc<AtomicU64>`] that per-shard
/// recorders share (see [`FlightRecorder::new_sharing`]): each shard
/// rings its own records without cross-shard locking, yet `seq` stays a
/// single global order that [`merged_dump`] can sort on, so a merged
/// dump satisfies the same ascending-seq invariant as a single ring.
#[derive(Debug)]
pub struct FlightRecorder {
    inner: Mutex<Inner>,
    seq: Arc<AtomicU64>,
    cap: usize,
}

#[derive(Debug)]
struct Inner {
    ring: VecDeque<FlightRecord>,
    evicted: u64,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `cap` requests (cap 0 is
    /// clamped to 1: a recorder that can't record anything would turn
    /// every dump invariant vacuous), with its own sequence counter.
    pub fn new(cap: usize) -> Self {
        Self::new_sharing(cap, Arc::new(AtomicU64::new(1)))
    }

    /// A recorder drawing sequence numbers from a shared counter, so
    /// several per-shard recorders produce one global record order.
    pub fn new_sharing(cap: usize, seq: Arc<AtomicU64>) -> Self {
        FlightRecorder {
            inner: Mutex::new(Inner { ring: VecDeque::new(), evicted: 0 }),
            seq,
            cap: cap.max(1),
        }
    }

    /// The sequence counter, for cloning into sibling shard recorders.
    pub fn seq_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.seq)
    }

    /// Append one request record (the recorder assigns `seq`; the passed
    /// value is ignored). Evicts the oldest record when full.
    pub fn record(&self, mut rec: FlightRecord) {
        rec.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().unwrap();
        if inner.ring.len() == self.cap {
            inner.ring.pop_front();
            inner.evicted += 1;
        }
        inner.ring.push_back(rec);
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().ring.len()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the ring plus this recorder's eviction count.
    fn snapshot(&self) -> (Vec<FlightRecord>, u64) {
        let inner = self.inner.lock().unwrap();
        (inner.ring.iter().copied().collect(), inner.evicted)
    }

    /// Render the dump (see module docs): records oldest → newest, then
    /// exemplars ascending by bucket, then a footer with counts.
    pub fn dump(&self) -> String {
        let (records, evicted) = self.snapshot();
        render_dump(records, evicted)
    }
}

/// Merge several shard recorders into one dump: records from every ring
/// interleaved by global sequence number, exemplars recomputed over the
/// union, eviction counts summed. The shared `seq` counter makes the
/// sort deterministic and the result indistinguishable from a single
/// recorder that saw all the traffic.
pub fn merged_dump(recorders: &[&FlightRecorder]) -> String {
    let mut records = Vec::new();
    let mut evicted = 0;
    for fr in recorders {
        let (recs, ev) = fr.snapshot();
        records.extend(recs);
        evicted += ev;
    }
    render_dump(records, evicted)
}

/// Shared renderer behind [`FlightRecorder::dump`] and [`merged_dump`].
/// Sorts by `seq` (workers draw seqs before taking the ring lock, so even
/// one ring can briefly hold a transposed pair) and derives per-bucket
/// exemplars from the newest record in each occupied latency bucket.
fn render_dump(mut records: Vec<FlightRecord>, evicted: u64) -> String {
    records.sort_by_key(|r| r.seq);
    let mut out = String::from("# sekitei-flight v1\n");
    for r in &records {
        out.push_str(&format!(
            "record seq={} trace={} fp={:016x} class={} tier={} queue_us={} rg_nodes={} \
             latency_us={}\n",
            r.seq,
            r.trace_id,
            r.fingerprint,
            r.class,
            r.tier,
            r.queue_wait_us,
            r.rg_nodes,
            r.latency_us
        ));
    }
    // Most recent request per occupied latency bucket. Walking newest →
    // oldest and keeping first-seen gives exactly that.
    let mut exemplars: Vec<Exemplar> = Vec::new();
    for r in records.iter().rev() {
        let bucket = bucket_index(r.latency_us);
        if exemplars.iter().any(|e| e.bucket == bucket) {
            continue;
        }
        let (lo, hi) = bucket_bounds(bucket);
        exemplars.push(Exemplar { bucket, lo, hi, trace_id: r.trace_id, latency_us: r.latency_us });
    }
    exemplars.sort_by_key(|e| e.bucket);
    for e in &exemplars {
        out.push_str(&format!(
            "exemplar bucket={} lo={} hi={} trace={} latency_us={}\n",
            e.bucket, e.lo, e.hi, e.trace_id, e.latency_us
        ));
    }
    out.push_str(&format!(
        "# end sekitei-flight records={} exemplars={} evicted={}\n",
        records.len(),
        exemplars.len(),
        evicted
    ));
    out
}

/// Parsed form of a flight-recorder dump.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlightDump {
    /// In-ring records, oldest first.
    pub records: Vec<FlightRecord>,
    /// Per-latency-bucket exemplars, ascending by bucket.
    pub exemplars: Vec<Exemplar>,
    /// Records evicted from the ring over the recorder's lifetime.
    pub evicted: u64,
}

fn kv<'a>(part: Option<&'a str>, key: &str, line_no: usize) -> Result<&'a str, String> {
    let part = part.ok_or_else(|| format!("line {line_no}: missing field {key}"))?;
    part.strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| format!("line {line_no}: expected {key}=…, got {part:?}"))
}

fn kv_u64(part: Option<&str>, key: &str, line_no: usize) -> Result<u64, String> {
    let v = kv(part, key, line_no)?;
    v.parse().map_err(|_| format!("line {line_no}: bad {key} value {v:?}"))
}

/// Strict parser for the dump format; validates structure *and* the
/// exemplar invariant: every exemplar's `(trace, latency)` must match a
/// record in the dump whose latency falls inside the exemplar's bucket.
pub fn parse_dump(text: &str) -> Result<FlightDump, String> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, "# sekitei-flight v1")) => {}
        Some((_, l)) => return Err(format!("bad header {l:?}")),
        None => return Err("empty dump".into()),
    }
    let mut dump = FlightDump::default();
    let mut footer: Option<(u64, u64, u64)> = None;
    for (idx, line) in lines {
        let line_no = idx + 1;
        if footer.is_some() {
            return Err(format!("line {line_no}: content after footer"));
        }
        if let Some(rest) = line.strip_prefix("# end sekitei-flight ") {
            let mut parts = rest.split(' ');
            let records = kv_u64(parts.next(), "records", line_no)?;
            let exemplars = kv_u64(parts.next(), "exemplars", line_no)?;
            let evicted = kv_u64(parts.next(), "evicted", line_no)?;
            if parts.next().is_some() {
                return Err(format!("line {line_no}: trailing footer fields"));
            }
            footer = Some((records, exemplars, evicted));
            continue;
        }
        let mut parts = line.split(' ');
        match parts.next() {
            Some("record") => {
                let seq = kv_u64(parts.next(), "seq", line_no)?;
                let trace_id = kv_u64(parts.next(), "trace", line_no)?;
                let fp = kv(parts.next(), "fp", line_no)?;
                let fingerprint = u64::from_str_radix(fp, 16)
                    .map_err(|_| format!("line {line_no}: bad fp {fp:?}"))?;
                let class_s = kv(parts.next(), "class", line_no)?;
                let class = OutcomeClass::parse(class_s)
                    .ok_or_else(|| format!("line {line_no}: unknown class {class_s:?}"))?;
                let tier_s = kv(parts.next(), "tier", line_no)?;
                let tier = CacheTier::parse(tier_s)
                    .ok_or_else(|| format!("line {line_no}: unknown tier {tier_s:?}"))?;
                let queue_wait_us = kv_u64(parts.next(), "queue_us", line_no)?;
                let rg_nodes = kv_u64(parts.next(), "rg_nodes", line_no)?;
                let latency_us = kv_u64(parts.next(), "latency_us", line_no)?;
                if parts.next().is_some() {
                    return Err(format!("line {line_no}: trailing record fields"));
                }
                if let Some(prev) = dump.records.last() {
                    if prev.seq >= seq {
                        return Err(format!("line {line_no}: record seqs not ascending"));
                    }
                }
                dump.records.push(FlightRecord {
                    seq,
                    trace_id,
                    fingerprint,
                    class,
                    tier,
                    queue_wait_us,
                    rg_nodes,
                    latency_us,
                });
            }
            Some("exemplar") => {
                let bucket = kv_u64(parts.next(), "bucket", line_no)? as usize;
                let lo = kv_u64(parts.next(), "lo", line_no)?;
                let hi = kv_u64(parts.next(), "hi", line_no)?;
                let trace_id = kv_u64(parts.next(), "trace", line_no)?;
                let latency_us = kv_u64(parts.next(), "latency_us", line_no)?;
                if parts.next().is_some() {
                    return Err(format!("line {line_no}: trailing exemplar fields"));
                }
                if bucket_bounds(bucket) != (lo, hi) {
                    return Err(format!("line {line_no}: bucket {bucket} bounds disagree"));
                }
                if !(lo <= latency_us && (latency_us < hi || hi == u64::MAX)) {
                    return Err(format!(
                        "line {line_no}: exemplar latency {latency_us} outside bucket [{lo},{hi})"
                    ));
                }
                if let Some(prev) = dump.exemplars.last() {
                    if prev.bucket >= bucket {
                        return Err(format!("line {line_no}: exemplar buckets not ascending"));
                    }
                }
                dump.exemplars.push(Exemplar { bucket, lo, hi, trace_id, latency_us });
            }
            Some(kind) => return Err(format!("line {line_no}: unknown line kind {kind:?}")),
            None => return Err(format!("line {line_no}: empty line")),
        }
    }
    let Some((records, exemplars, evicted)) = footer else {
        return Err("missing footer (truncated dump?)".into());
    };
    if records != dump.records.len() as u64 || exemplars != dump.exemplars.len() as u64 {
        return Err(format!(
            "footer counts ({records} records, {exemplars} exemplars) disagree with body \
             ({} records, {} exemplars)",
            dump.records.len(),
            dump.exemplars.len()
        ));
    }
    dump.evicted = evicted;
    // The exemplar invariant: resolvable to a recorded request.
    for e in &dump.exemplars {
        let resolvable = dump.records.iter().any(|r| {
            r.trace_id == e.trace_id
                && r.latency_us == e.latency_us
                && bucket_index(r.latency_us) == e.bucket
        });
        if !resolvable {
            return Err(format!(
                "exemplar for bucket {} (trace {}) does not resolve to any recorded request",
                e.bucket, e.trace_id
            ));
        }
    }
    Ok(dump)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace_id: u64, latency_us: u64) -> FlightRecord {
        FlightRecord {
            seq: 0, // assigned by the recorder
            trace_id,
            fingerprint: 0xABCD_EF01_2345_6789,
            class: OutcomeClass::Exact,
            tier: CacheTier::Full,
            queue_wait_us: 3,
            rg_nodes: 420,
            latency_us,
        }
    }

    #[test]
    fn dump_roundtrips_and_orders() {
        let fr = FlightRecorder::new(16);
        fr.record(rec(11, 40));
        fr.record(rec(12, 41));
        fr.record(rec(13, 900));
        let dump = parse_dump(&fr.dump()).unwrap();
        assert_eq!(dump.records.len(), 3);
        assert_eq!(dump.evicted, 0);
        assert_eq!(dump.records[0].seq, 1);
        assert_eq!(dump.records[2].trace_id, 13);
        // 3 distinct latency buckets → 3 exemplars, ascending.
        assert_eq!(dump.exemplars.len(), 3);
        assert!(dump.exemplars.windows(2).all(|w| w[0].bucket < w[1].bucket));
    }

    #[test]
    fn exemplar_is_most_recent_in_bucket() {
        let fr = FlightRecorder::new(16);
        fr.record(rec(21, 40));
        fr.record(rec(22, 40)); // same bucket, newer
        let dump = parse_dump(&fr.dump()).unwrap();
        assert_eq!(dump.exemplars.len(), 1);
        assert_eq!(dump.exemplars[0].trace_id, 22);
    }

    #[test]
    fn eviction_keeps_exemplars_resolvable() {
        let fr = FlightRecorder::new(4);
        for i in 0..20u64 {
            fr.record(rec(100 + i, 10 + i * 100));
        }
        assert_eq!(fr.len(), 4);
        let dump = parse_dump(&fr.dump()).unwrap();
        assert_eq!(dump.records.len(), 4);
        assert_eq!(dump.evicted, 16);
        // Every exemplar points at an in-ring record (parse_dump already
        // enforces this; double-check the bucket set matches the ring).
        assert_eq!(dump.exemplars.len(), 4);
        for e in &dump.exemplars {
            assert!(dump.records.iter().any(|r| r.trace_id == e.trace_id));
        }
    }

    #[test]
    fn parser_rejects_unresolvable_exemplars_and_damage() {
        let fr = FlightRecorder::new(8);
        fr.record(rec(31, 40));
        let good = fr.dump();
        // An exemplar whose trace id matches no record must fail.
        let dangling =
            good.replace("trace=31 latency_us=40\n# end", "trace=99 latency_us=40\n# end");
        assert!(parse_dump(&dangling).unwrap_err().contains("resolve"));
        // Truncation (no footer).
        let truncated: String = good.lines().take(2).map(|l| format!("{l}\n")).collect();
        assert!(parse_dump(&truncated).unwrap_err().contains("footer"));
        // Footer count mismatch.
        let miscounted = good.replace("records=1", "records=2");
        assert!(parse_dump(&miscounted).unwrap_err().contains("disagree"));
        // Unknown class.
        let badclass = good.replace("class=exact", "class=wat");
        assert!(parse_dump(&badclass).unwrap_err().contains("unknown class"));
    }

    #[test]
    fn merged_dump_interleaves_shard_rings_by_seq() {
        let a = FlightRecorder::new(4);
        let b = FlightRecorder::new_sharing(4, a.seq_counter());
        // alternate records across the two shard rings
        a.record(rec(41, 40));
        b.record(rec(42, 900));
        a.record(rec(43, 41));
        b.record(rec(44, 901));
        let dump = parse_dump(&merged_dump(&[&a, &b])).unwrap();
        assert_eq!(dump.records.len(), 4);
        // ascending global seq despite living in different rings
        let seqs: Vec<u64> = dump.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4]);
        let traces: Vec<u64> = dump.records.iter().map(|r| r.trace_id).collect();
        assert_eq!(traces, vec![41, 42, 43, 44]);
        assert_eq!(dump.evicted, 0);
        // evictions sum across rings
        for i in 0..6u64 {
            a.record(rec(50 + i, 10));
            b.record(rec(60 + i, 10));
        }
        let dump = parse_dump(&merged_dump(&[&a, &b])).unwrap();
        assert_eq!(dump.records.len(), 8);
        assert_eq!(dump.evicted, 8);
    }

    #[test]
    fn class_and_tier_names_roundtrip() {
        for c in [
            OutcomeClass::Exact,
            OutcomeClass::Degraded,
            OutcomeClass::Cached,
            OutcomeClass::BudgetExhausted,
            OutcomeClass::DeadlineHit,
            OutcomeClass::Error,
        ] {
            assert_eq!(OutcomeClass::parse(c.as_str()), Some(c));
        }
        for t in [CacheTier::Outcome, CacheTier::Task, CacheTier::Full] {
            assert_eq!(CacheTier::parse(t.as_str()), Some(t));
        }
        assert_eq!(OutcomeClass::parse("nope"), None);
    }
}
