//! Blocking client helpers: one request/response exchange per call, or a
//! persistent [`Connection`] for request streams.

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, Priority, Request, Response,
    ServedVia, StatsSnapshot,
};
use sekitei_model::CppProblem;
use sekitei_spec::{SpecError, WireOutcome, WirePhase};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// Malformed response bytes.
    Protocol(SpecError),
    /// The server's admission control turned the request away.
    Rejected(String),
    /// The server reported a request failure.
    Server(String),
    /// The server answered with a response kind this call cannot use.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Rejected(m) => write!(f, "rejected: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Unexpected(k) => write!(f, "unexpected response kind: {k}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<SpecError> for ClientError {
    fn from(e: SpecError) -> Self {
        ClientError::Protocol(e)
    }
}

/// A persistent connection to a planning server. Requests on one
/// connection are served in order by a single worker; open several
/// connections for parallelism.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
}

impl Connection {
    /// Connect to `addr` with sane read/write timeouts.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Connection, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_write_timeout(Some(Duration::from_secs(60)))?;
        Ok(Connection { stream })
    }

    /// One request/response exchange.
    pub fn exchange(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &encode_request(req))?;
        let frame = read_frame(&mut self.stream)?;
        Ok(decode_response(&frame)?)
    }

    /// Plan an already-wire-encoded (`SKT1`) problem. Returns the outcome
    /// and how the server served it (computed, cached, or coalesced onto
    /// a concurrent search).
    pub fn plan_bytes(&mut self, problem: &[u8]) -> Result<(WireOutcome, ServedVia), ClientError> {
        let served = self.plan_bytes_traced(problem, 0, false, Priority::Normal)?;
        Ok((served.outcome, served.served_via))
    }

    /// Plan already-encoded problem bytes carrying a trace id and
    /// priority class, optionally asking the server for its per-phase
    /// self-time table.
    pub fn plan_bytes_traced(
        &mut self,
        problem: &[u8],
        trace_id: u64,
        profile: bool,
        priority: Priority,
    ) -> Result<ServedOutcome, ClientError> {
        let req = Request::Plan { trace_id, profile, priority, problem: problem.to_vec() };
        match self.exchange(&req)? {
            Response::Outcome { served_via, trace_id, phases, outcome } => {
                Ok(ServedOutcome { outcome, served_via, trace_id, phases })
            }
            Response::Rejected(m) => Err(ClientError::Rejected(m)),
            Response::Error(m) => Err(ClientError::Server(m)),
            _ => Err(ClientError::Unexpected("non-outcome")),
        }
    }

    /// Plan a problem.
    pub fn plan(&mut self, problem: &CppProblem) -> Result<(WireOutcome, ServedVia), ClientError> {
        self.plan_bytes(&sekitei_spec::encode(problem))
    }

    /// Fetch the serving counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.exchange(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Rejected(m) => Err(ClientError::Rejected(m)),
            Response::Error(m) => Err(ClientError::Server(m)),
            _ => Err(ClientError::Unexpected("non-stats")),
        }
    }

    /// Fetch the live metrics exposition text (scrape without restart).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.exchange(&Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            Response::Rejected(m) => Err(ClientError::Rejected(m)),
            Response::Error(m) => Err(ClientError::Server(m)),
            _ => Err(ClientError::Unexpected("non-metrics")),
        }
    }

    /// Fetch the flight-recorder dump text.
    pub fn flight_recorder(&mut self) -> Result<String, ClientError> {
        match self.exchange(&Request::FlightRecorder)? {
            Response::FlightRecorder(text) => Ok(text),
            Response::Rejected(m) => Err(ClientError::Rejected(m)),
            Response::Error(m) => Err(ClientError::Server(m)),
            _ => Err(ClientError::Unexpected("non-flight")),
        }
    }
}

/// A full outcome response: payload plus the telemetry envelope.
#[derive(Debug, Clone)]
pub struct ServedOutcome {
    /// The planning outcome.
    pub outcome: WireOutcome,
    /// How the server answered: a fresh search, an outcome-cache replay,
    /// or a coalesced join onto a concurrent identical request.
    pub served_via: ServedVia,
    /// Echo of the request's trace id.
    pub trace_id: u64,
    /// Server per-phase self-times (empty unless `profile` was requested).
    pub phases: Vec<WirePhase>,
}

/// One-shot: plan `problem` against the server at `addr`.
pub fn request_plan(
    addr: impl ToSocketAddrs,
    problem: &CppProblem,
) -> Result<(WireOutcome, ServedVia), ClientError> {
    Connection::connect(addr)?.plan(problem)
}

/// One-shot: fetch the serving counters.
pub fn request_stats(addr: impl ToSocketAddrs) -> Result<StatsSnapshot, ClientError> {
    Connection::connect(addr)?.stats()
}

/// One-shot: fetch the live metrics exposition text.
pub fn request_metrics(addr: impl ToSocketAddrs) -> Result<String, ClientError> {
    Connection::connect(addr)?.metrics()
}

/// One-shot: fetch the flight-recorder dump text.
pub fn request_flight_recorder(addr: impl ToSocketAddrs) -> Result<String, ClientError> {
    Connection::connect(addr)?.flight_recorder()
}

/// One-shot: ask the server to shut down. `Ok` once the server
/// acknowledges.
pub fn request_shutdown(addr: impl ToSocketAddrs) -> Result<(), ClientError> {
    match Connection::connect(addr)?.exchange(&Request::Shutdown)? {
        Response::Bye => Ok(()),
        Response::Rejected(m) => Err(ClientError::Rejected(m)),
        Response::Error(m) => Err(ClientError::Server(m)),
        _ => Err(ClientError::Unexpected("non-bye")),
    }
}
