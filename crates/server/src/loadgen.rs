//! `sekitei loadgen`: a seeded open/closed-loop load generator for the
//! planning server.
//!
//! The generator drives a corpus of pre-encoded scenarios at the server
//! over `connections` persistent connections, sampling scenarios from a
//! Zipf distribution (rank 0 = hottest) so the outcome cache sees a
//! realistic skewed key stream. Per-connection request schedules —
//! scenario choice, trace id, and whether to verify the served
//! certificate — are precomputed from [`SplitMix64`] streams derived
//! from the seed, so the *deterministic report* (per-scenario and
//! per-content-class counts, certificate-verification tallies) is
//! byte-identical across runs with the same seed and config. Timing
//! data (sustained req/s, latency percentiles from merged
//! per-connection [`Histogram`] shards, cache-hit counts) is
//! nondeterministic by nature and rendered separately.
//!
//! Closed-loop mode (`rate_per_s == None`) keeps `pipeline` requests in
//! flight per connection back to back; open-loop mode paces bursts of
//! `burst` requests to hit a target aggregate arrival rate, measuring
//! what the queue does under bursty load rather than what the server
//! can absorb.
//!
//! Note: the server dedicates one worker to each live connection, so
//! `connections` must not exceed the server's worker count or the extra
//! connections wait in the accept queue for the whole run.

use crate::client::ClientError;
use crate::flight::OutcomeClass;
use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, Priority, Request, Response,
    ServedVia,
};
use sekitei_cert::{check_certificate, decode_certificate};
use sekitei_compile::{compile, PlanningTask};
use sekitei_model::CppProblem;
use sekitei_obs::Histogram;
use sekitei_util::SplitMix64;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One corpus entry: a scenario the generator can request.
#[derive(Debug, Clone)]
pub struct ScenarioItem {
    /// Display label (e.g. `Tiny/C`), used in the per-scenario report.
    pub label: String,
    /// The decoded problem (compiled client-side for cert verification).
    pub problem: CppProblem,
    /// Pre-encoded `SKT1` bytes sent on the wire.
    pub bytes: Vec<u8>,
}

impl ScenarioItem {
    /// Build an item from a problem, encoding it once up front.
    pub fn new(label: impl Into<String>, problem: CppProblem) -> ScenarioItem {
        let bytes = sekitei_spec::encode(&problem).to_vec();
        ScenarioItem { label: label.into(), problem, bytes }
    }
}

/// Load-generator knobs. All fields feed the deterministic schedule
/// except none — the whole config is echoed into the report header.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Total requests across all connections.
    pub requests: u64,
    /// Persistent connections (each served by one dedicated worker).
    pub connections: usize,
    /// Seed for every per-connection schedule stream.
    pub seed: u64,
    /// Zipf exponent over corpus ranks (0.0 = uniform).
    pub zipf_s: f64,
    /// Requests kept in flight per connection (min 1).
    pub pipeline: usize,
    /// Open-loop target arrival rate in requests/s across all
    /// connections; `None` runs closed-loop (as fast as replies come).
    pub rate_per_s: Option<f64>,
    /// Open-loop burst size: requests sent back to back per arrival
    /// slot (min 1; ignored in closed-loop mode).
    pub burst: usize,
    /// Verify the served certificate on every Nth request per
    /// connection (0 = never).
    pub verify_every: u64,
    /// Send every Nth request per connection at `Low` priority (0 =
    /// all `Normal`). Under queue pressure the server sheds these
    /// first; the `shed` tally measures how many.
    pub low_every: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            requests: 1_000,
            connections: 2,
            seed: 0xBADC_0FFE,
            zipf_s: 1.1,
            pipeline: 4,
            rate_per_s: None,
            burst: 1,
            verify_every: 0,
            low_every: 0,
        }
    }
}

/// Everything a loadgen run produces.
#[derive(Debug)]
pub struct LoadReport {
    /// Byte-identical across runs with the same seed, config and corpus
    /// (assuming the server plans deterministically, i.e. no deadline
    /// hits): config echo, per-scenario counts, content-class counts,
    /// certificate-verification tallies.
    pub deterministic: String,
    /// Wall-clock-dependent summary: elapsed, sustained req/s, latency
    /// percentiles, cache hits.
    pub timing: String,
    /// `BENCH_server.json` contents: throughput and tail-latency rows.
    pub bench_json: String,
    /// Requests completed (including error responses).
    pub completed: u64,
    /// Error responses received (server `Error`/`Rejected` replies).
    pub errors: u64,
    /// Outcome-cache hits observed (nondeterministic: depends on
    /// cross-connection interleaving).
    pub cache_hits: u64,
    /// Replies coalesced onto another connection's in-flight search
    /// (nondeterministic, like `cache_hits`).
    pub coalesced: u64,
    /// Requests shed by the server's priority gate (`Rejected` replies
    /// naming a shed; nondeterministic — depends on queue pressure).
    pub shed: u64,
    /// Sustained throughput over the measurement window.
    pub req_per_s: f64,
    /// Merged latency distribution across all connections.
    pub latency: Histogram,
    /// Content-class counts indexed `[exact, degraded, cached,
    /// budget_exhausted, deadline_hit, error]` — `cached` stays 0 here
    /// because the generator counts the *content* class of every reply.
    pub class_counts: [u64; 6],
    /// Certificates checked / passed / failed on the sampled subset.
    pub verified: (u64, u64, u64),
}

/// One request in a connection's precomputed schedule.
#[derive(Debug, Clone, Copy)]
struct Slot {
    scenario: usize,
    trace_id: u64,
    verify: bool,
    priority: Priority,
}

/// Per-connection tallies folded into the final report in connection
/// order (so aggregation is deterministic too).
struct WorkerOut {
    scenario_counts: Vec<u64>,
    class_counts: [u64; 6],
    cache_hits: u64,
    coalesced: u64,
    shed: u64,
    errors: u64,
    verified: (u64, u64, u64),
    hist: Histogram,
    completed: u64,
}

fn class_slot(class: OutcomeClass) -> usize {
    match class {
        OutcomeClass::Exact => 0,
        OutcomeClass::Degraded => 1,
        OutcomeClass::Cached => 2,
        OutcomeClass::BudgetExhausted => 3,
        OutcomeClass::DeadlineHit => 4,
        OutcomeClass::Error => 5,
    }
}

/// Cumulative Zipf distribution over `n` ranks with exponent `s`.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut total = 0.0;
    for rank in 0..n {
        total += 1.0 / ((rank + 1) as f64).powf(s);
        cdf.push(total);
    }
    for v in &mut cdf {
        *v /= total;
    }
    cdf
}

fn sample_cdf(cdf: &[f64], u: f64) -> usize {
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// Precompute connection `c`'s schedule: `count` slots drawn from its
/// own seed-derived stream, independent of every other connection.
fn schedule(cfg: &LoadgenConfig, cdf: &[f64], c: usize, count: u64) -> Vec<Slot> {
    let mut rng = SplitMix64::new(cfg.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(c as u64 + 1));
    (0..count)
        .map(|i| {
            let scenario = sample_cdf(cdf, rng.unit());
            let trace_id = rng.next_u64().max(1);
            let verify = cfg.verify_every > 0 && i % cfg.verify_every == 0;
            let priority = if cfg.low_every > 0 && i % cfg.low_every == 0 {
                Priority::Low
            } else {
                Priority::Normal
            };
            Slot { scenario, trace_id, verify, priority }
        })
        .collect()
}

fn verify_served(
    tasks: &[Option<PlanningTask>],
    slot: Slot,
    outcome: &sekitei_spec::WireOutcome,
    out: &mut WorkerOut,
) {
    if outcome.plan.is_none() {
        return; // nothing to certify; not counted as sampled
    }
    out.verified.0 += 1;
    let ok = match (&outcome.certificate, &tasks[slot.scenario]) {
        (Some(bytes), Some(task)) => {
            decode_certificate(bytes).and_then(|cert| check_certificate(task, &cert)).is_ok()
        }
        _ => false,
    };
    if ok {
        out.verified.1 += 1;
    } else {
        out.verified.2 += 1;
    }
}

/// Drive one connection through its schedule, keeping up to
/// `cfg.pipeline` requests in flight (open-loop mode paces bursts
/// instead). Returns per-connection tallies.
fn drive(
    cfg: &LoadgenConfig,
    addr: SocketAddr,
    corpus: &[ScenarioItem],
    tasks: &[Option<PlanningTask>],
    slots: &[Slot],
) -> Result<WorkerOut, ClientError> {
    let mut out = WorkerOut {
        scenario_counts: vec![0; corpus.len()],
        class_counts: [0; 6],
        cache_hits: 0,
        coalesced: 0,
        shed: 0,
        errors: 0,
        verified: (0, 0, 0),
        hist: Histogram::new(),
        completed: 0,
    };
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    // batch the pipeline window into one write and drain replies through
    // a buffered reader — the syscall count per request is what bounds a
    // single-core closed loop, on the client exactly as on the server
    let mut reader = BufReader::with_capacity(64 * 1024, stream.try_clone()?);
    let mut writer = BufWriter::with_capacity(64 * 1024, stream);

    let batch_len = match cfg.rate_per_s {
        Some(_) => cfg.burst.max(1),
        None => cfg.pipeline.max(1),
    };
    // open-loop pacing: each burst owns a slice of the aggregate rate
    let burst_interval = cfg.rate_per_s.map(|rate| {
        let per_conn = (rate / cfg.connections.max(1) as f64).max(1e-9);
        Duration::from_secs_f64(batch_len as f64 / per_conn)
    });
    let start = Instant::now();

    let mut at = 0usize;
    let mut batch_no = 0u32;
    while at < slots.len() {
        if let Some(interval) = burst_interval {
            let due = start + interval * batch_no;
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        batch_no += 1;
        let batch = &slots[at..(at + batch_len).min(slots.len())];
        at += batch.len();

        let t0 = Instant::now();
        for slot in batch {
            let req = Request::Plan {
                trace_id: slot.trace_id,
                profile: false,
                priority: slot.priority,
                problem: corpus[slot.scenario].bytes.clone(),
            };
            write_frame(&mut writer, &encode_request(&req))?;
        }
        writer.flush()?;
        for slot in batch {
            let frame = read_frame(&mut reader)?;
            let latency_us = t0.elapsed().as_micros() as u64;
            out.hist.record(latency_us);
            out.completed += 1;
            out.scenario_counts[slot.scenario] += 1;
            match decode_response(&frame)? {
                Response::Outcome { served_via, trace_id, outcome, .. } => {
                    if trace_id != slot.trace_id {
                        return Err(ClientError::Unexpected("trace id mismatch"));
                    }
                    match served_via {
                        ServedVia::Cache => out.cache_hits += 1,
                        ServedVia::Coalesced => out.coalesced += 1,
                        ServedVia::Computed => {}
                    }
                    // content class: identical whether served cached or
                    // computed, so it belongs in the deterministic report
                    out.class_counts[class_slot(OutcomeClass::of_outcome(&outcome))] += 1;
                    if slot.verify {
                        verify_served(tasks, *slot, &outcome, &mut out);
                    }
                }
                Response::Rejected(m) => {
                    // priority sheds are load feedback, not failures: they
                    // tally separately (timing section — pressure-dependent)
                    if m.contains("shed") {
                        out.shed += 1;
                    } else {
                        out.errors += 1;
                    }
                    out.class_counts[class_slot(OutcomeClass::Error)] += 1;
                }
                Response::Error(_) => {
                    out.errors += 1;
                    out.class_counts[class_slot(OutcomeClass::Error)] += 1;
                }
                _ => return Err(ClientError::Unexpected("non-outcome")),
            }
        }
    }
    Ok(out)
}

/// Run the generator against the server at `addr` and collect the
/// report. The corpus must be non-empty; scenario rank order (index 0 =
/// hottest under Zipf) is the caller's choice.
pub fn run(
    cfg: &LoadgenConfig,
    addr: SocketAddr,
    corpus: &[ScenarioItem],
) -> Result<LoadReport, ClientError> {
    assert!(!corpus.is_empty(), "loadgen needs a non-empty corpus");
    let conns = cfg.connections.max(1);
    let cdf = zipf_cdf(corpus.len(), cfg.zipf_s);

    // client-side compiled tasks for certificate checking, built before
    // the measurement window opens (None = scenario fails to compile;
    // its verifications count as failures)
    let tasks: Vec<Option<PlanningTask>> = if cfg.verify_every > 0 {
        corpus.iter().map(|s| compile(&s.problem).ok()).collect()
    } else {
        corpus.iter().map(|_| None).collect()
    };

    // split requests across connections; earlier connections absorb the
    // remainder so the total is exact
    let schedules: Vec<Vec<Slot>> = (0..conns)
        .map(|c| {
            let base = cfg.requests / conns as u64;
            let extra = u64::from((c as u64) < cfg.requests % conns as u64);
            schedule(cfg, &cdf, c, base + extra)
        })
        .collect();

    let started = Instant::now();
    let outs: Vec<Result<WorkerOut, ClientError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = schedules
            .iter()
            .map(|slots| scope.spawn(|| drive(cfg, addr, corpus, &tasks, slots)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("loadgen worker panicked")).collect()
    });
    let elapsed = started.elapsed();

    let mut scenario_counts = vec![0u64; corpus.len()];
    let mut class_counts = [0u64; 6];
    let merged = Histogram::new();
    let (mut completed, mut errors, mut cache_hits) = (0u64, 0u64, 0u64);
    let (mut coalesced, mut shed) = (0u64, 0u64);
    let mut verified = (0u64, 0u64, 0u64);
    for out in outs {
        let out = out?;
        for (total, c) in scenario_counts.iter_mut().zip(&out.scenario_counts) {
            *total += c;
        }
        for (total, c) in class_counts.iter_mut().zip(&out.class_counts) {
            *total += c;
        }
        completed += out.completed;
        errors += out.errors;
        cache_hits += out.cache_hits;
        coalesced += out.coalesced;
        shed += out.shed;
        verified.0 += out.verified.0;
        verified.1 += out.verified.1;
        verified.2 += out.verified.2;
        merged.merge(&out.hist);
    }

    let req_per_s = completed as f64 / elapsed.as_secs_f64().max(1e-9);
    let deterministic =
        render_deterministic(cfg, corpus, &scenario_counts, &class_counts, verified);
    let timing = render_timing(elapsed, completed, req_per_s, cache_hits, coalesced, shed, &merged);
    let bench_json = render_bench_json(
        cfg,
        elapsed,
        completed,
        errors,
        req_per_s,
        cache_hits,
        coalesced,
        shed,
        &merged,
        &class_counts,
    );

    Ok(LoadReport {
        deterministic,
        timing,
        bench_json,
        completed,
        errors,
        cache_hits,
        coalesced,
        shed,
        req_per_s,
        latency: merged,
        class_counts,
        verified,
    })
}

fn render_deterministic(
    cfg: &LoadgenConfig,
    corpus: &[ScenarioItem],
    scenario_counts: &[u64],
    class_counts: &[u64; 6],
    verified: (u64, u64, u64),
) -> String {
    let mut s = String::new();
    s.push_str("# sekitei-loadgen v1\n");
    let mode = match cfg.rate_per_s {
        Some(rate) => format!("open rate_per_s={rate} burst={}", cfg.burst.max(1)),
        None => format!("closed pipeline={}", cfg.pipeline.max(1)),
    };
    s.push_str(&format!(
        "config seed={} requests={} connections={} zipf_s={} verify_every={} low_every={} mode={mode}\n",
        cfg.seed, cfg.requests, cfg.connections, cfg.zipf_s, cfg.verify_every, cfg.low_every
    ));
    s.push_str(&format!("corpus scenarios={}\n", corpus.len()));
    for (item, count) in corpus.iter().zip(scenario_counts) {
        s.push_str(&format!("scenario {} count={count}\n", item.label));
    }
    s.push_str(&format!(
        "classes exact={} degraded={} budget_exhausted={} deadline_hit={} error={}\n",
        class_counts[0], class_counts[1], class_counts[3], class_counts[4], class_counts[5]
    ));
    s.push_str(&format!("verify sampled={} ok={} fail={}\n", verified.0, verified.1, verified.2));
    s.push_str("# end sekitei-loadgen\n");
    s
}

fn render_timing(
    elapsed: Duration,
    completed: u64,
    req_per_s: f64,
    cache_hits: u64,
    coalesced: u64,
    shed: u64,
    hist: &Histogram,
) -> String {
    format!(
        "elapsed {:.3}s  completed {completed}  sustained {req_per_s:.0} req/s  cache_hits {cache_hits}  coalesced {coalesced}  shed {shed}\n\
         latency_us p50={} p95={} p99={} p99.9={} max={}\n",
        elapsed.as_secs_f64(),
        hist.quantile(0.50),
        hist.quantile(0.95),
        hist.quantile(0.99),
        hist.quantile(0.999),
        hist.max(),
    )
}

#[allow(clippy::too_many_arguments)]
fn render_bench_json(
    cfg: &LoadgenConfig,
    elapsed: Duration,
    completed: u64,
    errors: u64,
    req_per_s: f64,
    cache_hits: u64,
    coalesced: u64,
    shed: u64,
    hist: &Histogram,
    class_counts: &[u64; 6],
) -> String {
    let mode = if cfg.rate_per_s.is_some() { "open" } else { "closed" };
    format!(
        "[\n  {{\"row\": \"throughput\", \"mode\": \"{mode}\", \"seed\": {}, \"requests\": {completed}, \
\"connections\": {}, \"pipeline\": {}, \"elapsed_s\": {:.3}, \"req_per_s\": {req_per_s:.1}, \
\"errors\": {errors}, \"cache_hits\": {cache_hits}, \"coalesced\": {coalesced}, \"shed\": {shed}}},\n  \
{{\"row\": \"latency\", \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \"max_us\": {}}},\n  \
{{\"row\": \"classes\", \"exact\": {}, \"degraded\": {}, \"budget_exhausted\": {}, \"deadline_hit\": {}, \"error\": {}}}\n]\n",
        cfg.seed,
        cfg.connections,
        cfg.pipeline.max(1),
        elapsed.as_secs_f64(),
        hist.quantile(0.50),
        hist.quantile(0.95),
        hist.quantile(0.99),
        hist.quantile(0.999),
        hist.max(),
        class_counts[0],
        class_counts[1],
        class_counts[3],
        class_counts[4],
        class_counts[5],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_cdf_is_monotone_and_normalized() {
        let cdf = zipf_cdf(8, 1.2);
        assert_eq!(cdf.len(), 8);
        assert!(cdf.windows(2).all(|w| w[0] < w[1]));
        assert!((cdf[7] - 1.0).abs() < 1e-12);
        // rank 0 dominates under s > 1
        assert!(cdf[0] > 0.3);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let cdf = zipf_cdf(4, 0.0);
        for (i, c) in cdf.iter().enumerate() {
            assert!((c - (i + 1) as f64 / 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn schedules_are_deterministic_and_independent_per_connection() {
        let cfg = LoadgenConfig { seed: 7, verify_every: 3, ..LoadgenConfig::default() };
        let cdf = zipf_cdf(5, 1.0);
        let a1 = schedule(&cfg, &cdf, 0, 100);
        let a2 = schedule(&cfg, &cdf, 0, 100);
        let b = schedule(&cfg, &cdf, 1, 100);
        assert_eq!(a1.len(), 100);
        for (x, y) in a1.iter().zip(&a2) {
            assert_eq!((x.scenario, x.trace_id, x.verify), (y.scenario, y.trace_id, y.verify));
        }
        assert!(
            a1.iter().zip(&b).any(|(x, y)| x.trace_id != y.trace_id),
            "distinct connections draw distinct streams"
        );
        assert!(a1.iter().all(|s| s.trace_id != 0));
        assert!(a1[0].verify && !a1[1].verify && a1[3].verify);
    }

    #[test]
    fn request_split_covers_total_exactly() {
        let cfg = LoadgenConfig { requests: 10, connections: 3, ..LoadgenConfig::default() };
        let cdf = zipf_cdf(2, 1.0);
        let total: u64 = (0..3)
            .map(|c| {
                let base = cfg.requests / 3;
                let extra = u64::from((c as u64) < cfg.requests % 3);
                schedule(&cfg, &cdf, c, base + extra).len() as u64
            })
            .sum();
        assert_eq!(total, 10);
    }
}
