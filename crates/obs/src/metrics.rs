//! Metrics: counters, gauges, and log-linear histograms in a registry.
//!
//! The histogram is the workhorse: fixed-size, lock-free, allocation-free
//! after construction, with relative bucket error bounded by 1/32 (5
//! sub-bucket bits per octave) — plenty for p50/p95/p99 latency summaries
//! while staying cheap enough to record on every request.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sub-bucket resolution bits: 32 linear sub-buckets per power of two.
const SUB_BITS: u32 = 5;
/// Values below this are counted exactly (bucket width 1).
const EXACT: u64 = 1 << (SUB_BITS + 1); // 64
/// Total buckets: 64 exact + 32 per octave for exponents 6..=63.
pub const BUCKETS: usize = EXACT as usize + 32 * (64 - (SUB_BITS as usize + 1)); // 1920

/// Bucket index for a sample. Exact below [`EXACT`]; log-linear above.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < EXACT {
        return v as usize;
    }
    let e = 63 - v.leading_zeros(); // e >= 6
    let sub = ((v >> (e - SUB_BITS)) & 31) as usize;
    EXACT as usize + (e as usize - (SUB_BITS as usize + 1)) * 32 + sub
}

/// Half-open `[lo, hi)` value range of bucket `i` (hi saturates at
/// `u64::MAX` for the top bucket).
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < EXACT as usize {
        return (i as u64, i as u64 + 1);
    }
    let g = (i - EXACT as usize) / 32;
    let e = g as u32 + SUB_BITS + 1;
    let s = ((i - EXACT as usize) % 32) as u64;
    let lo = (32 + s) << (e - SUB_BITS);
    let hi = lo.saturating_add(1u64 << (e - SUB_BITS));
    (lo, hi)
}

/// Monotonic counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Point-in-time signed value.
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Histogram(count={}, sum={}, max={})", self.count(), self.sum(), self.max())
    }
}

/// Lock-free log-linear histogram over `u64` samples.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Nearest-rank quantile estimate: the lower bound of the bucket
    /// holding the rank-`ceil(q * count)` sample (so the estimate is
    /// within one bucket width below the exact quantile). An empty
    /// histogram reports 0 for every quantile — sparse and empty
    /// populations are handled uniformly, no window-fill assumptions.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((n as f64 * q).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_bounds(i).0;
            }
        }
        self.max()
    }

    /// Fold `other` into `self`: bucketwise count addition, summed
    /// totals, max of maxes. Used to aggregate per-worker histogram
    /// shards into one population before taking quantiles — recording
    /// into thread-local shards and merging once is cheaper than N
    /// threads contending on one histogram's cache lines. Merging is
    /// exact: the merged histogram is indistinguishable from one that
    /// recorded both sample streams directly.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let c = theirs.load(Ordering::Relaxed);
            if c != 0 {
                mine.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// Visit the non-empty buckets in index order as `(index, count)`.
    pub fn for_each_bucket(&self, mut f: impl FnMut(usize, u64)) {
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c != 0 {
                f(i, c);
            }
        }
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Borrowed view of one registered metric, as yielded by
/// [`MetricsRegistry::for_each`]. Counters and gauges are read at visit
/// time; histograms hand out the live handle so the visitor chooses what
/// to snapshot.
pub enum MetricView<'a> {
    Counter(u64),
    Gauge(i64),
    Histogram(&'a Histogram),
}

/// A named set of metrics. Handles are `Arc`s: call sites keep their
/// handle and record lock-free; the registry is only locked to create or
/// enumerate. Instantiable (not global) so each subsystem — e.g. one
/// server instance — owns its metrics and tests don't share state.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`. Panics if the name is
    /// already registered as a different metric type.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().unwrap();
        match m.entry(name.to_string()).or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Visit every metric in name order (the registry's natural sort).
    /// The registry lock is held for the duration of the walk; visitors
    /// must not call back into the registry.
    pub fn for_each(&self, mut f: impl FnMut(&str, MetricView<'_>)) {
        let m = self.metrics.lock().unwrap();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => f(name, MetricView::Counter(c.get())),
                Metric::Gauge(g) => f(name, MetricView::Gauge(g.get())),
                Metric::Histogram(h) => f(name, MetricView::Histogram(h)),
            }
        }
    }
}

impl fmt::Display for MetricsRegistry {
    /// One line per metric, name-sorted (BTreeMap order) for determinism.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.metrics.lock().unwrap();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => writeln!(f, "{name}: {}", c.get())?,
                Metric::Gauge(g) => writeln!(f, "{name}: {}", g.get())?,
                Metric::Histogram(h) => writeln!(
                    f,
                    "{name}: count={} mean={:.1} p50={} p95={} p99={} max={}",
                    h.count(),
                    h.mean(),
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.quantile(0.99),
                    h.max()
                )?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_consistent() {
        // Every index maps to bounds that contain exactly the values that
        // map back to it, across the exact and log-linear regions.
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo < hi, "bucket {i} empty: [{lo}, {hi})");
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            if hi != u64::MAX {
                assert_eq!(bucket_index(hi - 1), i, "upper bound of bucket {i}");
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(63), 63);
        assert_eq!(bucket_index(64), 64);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn exact_region_quantiles_are_exact() {
        let h = Histogram::new();
        for v in 1..=50u64 {
            h.record(v);
        }
        // All samples < 64 so every bucket has width 1: exact answers.
        assert_eq!(h.quantile(0.5), 25);
        assert_eq!(h.quantile(1.0), 50);
        assert_eq!(h.max(), 50);
        assert_eq!(h.count(), 50);
        assert_eq!(h.sum(), 50 * 51 / 2);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let h = Histogram::new();
        h.record(7);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 7, "q={q}");
        }
    }

    #[test]
    fn log_region_quantile_within_bucket_width() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // Exact p99 of 1..=100 is 99; bucket [98, 100) reports 98.
        let p99 = h.quantile(0.99);
        assert!((98..=99).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(0.5), 50); // still exact below 64
    }

    #[test]
    fn registry_handles_are_shared_and_render_sorted() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("served");
        let b = reg.counter("served");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("served").get(), 3);
        reg.gauge("queue_depth").set(-1);
        reg.histogram("latency_us").record(10);
        let text = reg.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("latency_us:"));
        assert!(lines[1].starts_with("queue_depth: -1"));
        assert!(lines[2].starts_with("served: 3"));
    }

    #[test]
    fn merge_equals_pooled_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let pooled = Histogram::new();
        for v in [1u64, 5, 64, 1000, 1_000_000] {
            a.record(v);
            pooled.record(v);
        }
        for v in [2u64, 5, 128, 70_000] {
            b.record(v);
            pooled.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), pooled.count());
        assert_eq!(a.sum(), pooled.sum());
        assert_eq!(a.max(), pooled.max());
        let mut merged_buckets = Vec::new();
        a.for_each_bucket(|i, c| merged_buckets.push((i, c)));
        let mut pooled_buckets = Vec::new();
        pooled.for_each_bucket(|i, c| pooled_buckets.push((i, c)));
        assert_eq!(merged_buckets, pooled_buckets);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(a.quantile(q), pooled.quantile(q), "q={q}");
        }
    }

    #[test]
    fn merge_into_empty_copies_other() {
        let a = Histogram::new();
        let b = Histogram::new();
        b.record(42);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.quantile(0.5), 42);
        // Merging an empty histogram is a no-op.
        a.merge(&Histogram::new());
        assert_eq!(a.count(), 1);
        assert_eq!(a.sum(), 42);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("x");
        let _ = reg.histogram("x");
    }
}
