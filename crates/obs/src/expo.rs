//! Versioned text exposition of a [`MetricsRegistry`](crate::MetricsRegistry).
//!
//! A running server answers the `Metrics` control request with this
//! format, so any client (CLI, CI script, curl-equivalent) can scrape a
//! live process without restarting it. The format is line-oriented and
//! self-describing:
//!
//! ```text
//! # sekitei-metrics v1
//! counter served 3
//! gauge queue_depth -1
//! histogram latency_us count=3 sum=60 max=30
//! bucket latency_us 10 10 11 2
//! bucket latency_us 30 30 31 1
//! # end sekitei-metrics
//! ```
//!
//! * header/footer lines pin the version and detect truncation;
//! * metric lines are name-sorted (registry iteration order), so the
//!   exposition of a quiesced registry is byte-deterministic;
//! * `bucket <name> <index> <lo> <hi> <count>` lines follow their
//!   `histogram` line, ascending by index, non-zero buckets only. `lo`/`hi`
//!   are the half-open value bounds so a consumer never needs to
//!   re-derive the bucket layout.
//!
//! [`parse_exposition`] is the strict inverse: it validates the header,
//! footer, line shapes, bucket ordering/bounds, and that bucket counts
//! sum to each histogram's `count`. The server is scraped while hot, so
//! the one concession to concurrency is that totals are allowed to run
//! *ahead* of the bucket sum (a racing `record` bumps `count` before its
//! bucket) — never behind.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::{bucket_bounds, Histogram, MetricView, MetricsRegistry};

/// Version tag in the exposition header. Bump on any breaking change to
/// the line grammar.
pub const EXPOSITION_VERSION: u32 = 1;

const HEADER: &str = "# sekitei-metrics v1";
const FOOTER: &str = "# end sekitei-metrics";

/// One non-empty bucket of an exposed histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketEntry {
    pub index: usize,
    /// Half-open value bounds `[lo, hi)` of the bucket.
    pub lo: u64,
    pub hi: u64,
    pub count: u64,
}

/// Point-in-time copy of one histogram as carried by the exposition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    /// Non-empty buckets, ascending by index.
    pub buckets: Vec<BucketEntry>,
}

impl HistogramSnapshot {
    /// Nearest-rank quantile over the snapshot buckets, mirroring
    /// [`Histogram::quantile`]: the lower bound of the bucket holding the
    /// rank-`ceil(q * count)` sample. Ranks that fall into the
    /// scrape-race gap (totals ahead of bucket sums) resolve to the last
    /// bucket's lower bound.
    pub fn quantile(&self, q: f64) -> u64 {
        let n: u64 = self.buckets.iter().map(|b| b.count).sum();
        if n == 0 {
            return 0;
        }
        let rank = ((n as f64 * q).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return b.lo;
            }
        }
        self.buckets.last().map(|b| b.lo).unwrap_or(0)
    }
}

/// Parsed form of a metrics exposition.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Exposition {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Render the registry in exposition format (see module docs).
pub fn expose(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    registry.for_each(|name, view| match view {
        MetricView::Counter(v) => {
            let _ = writeln!(out, "counter {name} {v}");
        }
        MetricView::Gauge(v) => {
            let _ = writeln!(out, "gauge {name} {v}");
        }
        MetricView::Histogram(h) => {
            let snap = h.snapshot();
            let _ = writeln!(
                out,
                "histogram {name} count={} sum={} max={}",
                snap.count, snap.sum, snap.max
            );
            for b in &snap.buckets {
                let _ = writeln!(out, "bucket {name} {} {} {} {}", b.index, b.lo, b.hi, b.count);
            }
        }
    });
    out.push_str(FOOTER);
    out.push('\n');
    out
}

fn parse_u64(s: &str, what: &str, line_no: usize) -> Result<u64, String> {
    s.parse().map_err(|_| format!("line {line_no}: bad {what} {s:?}"))
}

/// Strict parser for the exposition format. Returns a description of the
/// first violation: unknown line kind, missing header/footer, orphaned or
/// out-of-order bucket lines, bounds that disagree with the bucket
/// layout, or bucket sums exceeding the histogram total.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, l)) if l == HEADER => {}
        Some((_, l)) => return Err(format!("bad header {l:?}, expected {HEADER:?}")),
        None => return Err("empty exposition".into()),
    }
    let mut out = Exposition::default();
    // Name of the histogram whose bucket lines are currently legal.
    let mut open_hist: Option<String> = None;
    let mut saw_footer = false;
    for (idx, line) in lines {
        let line_no = idx + 1;
        if saw_footer {
            return Err(format!("line {line_no}: content after footer"));
        }
        if line == FOOTER {
            saw_footer = true;
            continue;
        }
        let mut parts = line.split(' ');
        let kind = parts.next().unwrap_or("");
        if kind != "bucket" {
            open_hist = None;
        }
        match kind {
            "counter" => {
                let (name, val) = (parts.next(), parts.next());
                let (Some(name), Some(val), None) = (name, val, parts.next()) else {
                    return Err(format!("line {line_no}: malformed counter line"));
                };
                let v = parse_u64(val, "counter value", line_no)?;
                if out.counters.insert(name.to_string(), v).is_some() {
                    return Err(format!("line {line_no}: duplicate counter {name:?}"));
                }
            }
            "gauge" => {
                let (name, val) = (parts.next(), parts.next());
                let (Some(name), Some(val), None) = (name, val, parts.next()) else {
                    return Err(format!("line {line_no}: malformed gauge line"));
                };
                let v: i64 =
                    val.parse().map_err(|_| format!("line {line_no}: bad gauge value {val:?}"))?;
                if out.gauges.insert(name.to_string(), v).is_some() {
                    return Err(format!("line {line_no}: duplicate gauge {name:?}"));
                }
            }
            "histogram" => {
                let Some(name) = parts.next() else {
                    return Err(format!("line {line_no}: malformed histogram line"));
                };
                let mut snap = HistogramSnapshot::default();
                let mut seen = [false; 3];
                for field in parts {
                    let (key, val) = field
                        .split_once('=')
                        .ok_or_else(|| format!("line {line_no}: bad field {field:?}"))?;
                    let slot = match key {
                        "count" => 0,
                        "sum" => 1,
                        "max" => 2,
                        _ => return Err(format!("line {line_no}: unknown field {key:?}")),
                    };
                    if seen[slot] {
                        return Err(format!("line {line_no}: duplicate field {key:?}"));
                    }
                    seen[slot] = true;
                    let v = parse_u64(val, key, line_no)?;
                    match slot {
                        0 => snap.count = v,
                        1 => snap.sum = v,
                        _ => snap.max = v,
                    }
                }
                if seen != [true; 3] {
                    return Err(format!("line {line_no}: histogram line missing fields"));
                }
                if out.histograms.insert(name.to_string(), snap).is_some() {
                    return Err(format!("line {line_no}: duplicate histogram {name:?}"));
                }
                open_hist = Some(name.to_string());
            }
            "bucket" => {
                let Some(name) = parts.next() else {
                    return Err(format!("line {line_no}: malformed bucket line"));
                };
                if open_hist.as_deref() != Some(name) {
                    return Err(format!(
                        "line {line_no}: bucket for {name:?} not under its histogram line"
                    ));
                }
                let (Some(i), Some(lo), Some(hi), Some(c), None) =
                    (parts.next(), parts.next(), parts.next(), parts.next(), parts.next())
                else {
                    return Err(format!("line {line_no}: malformed bucket line"));
                };
                let index = parse_u64(i, "bucket index", line_no)? as usize;
                let entry = BucketEntry {
                    index,
                    lo: parse_u64(lo, "bucket lo", line_no)?,
                    hi: parse_u64(hi, "bucket hi", line_no)?,
                    count: parse_u64(c, "bucket count", line_no)?,
                };
                if entry.count == 0 {
                    return Err(format!("line {line_no}: zero-count bucket exposed"));
                }
                if bucket_bounds(index) != (entry.lo, entry.hi) {
                    return Err(format!("line {line_no}: bucket {index} bounds disagree"));
                }
                let hist = out.histograms.get_mut(name).unwrap();
                if let Some(prev) = hist.buckets.last() {
                    if prev.index >= index {
                        return Err(format!("line {line_no}: bucket indexes not ascending"));
                    }
                }
                hist.buckets.push(entry);
            }
            _ => return Err(format!("line {line_no}: unknown line kind {kind:?}")),
        }
    }
    if !saw_footer {
        return Err("missing footer (truncated exposition?)".into());
    }
    for (name, h) in &out.histograms {
        let bucket_sum: u64 = h.buckets.iter().map(|b| b.count).sum();
        if bucket_sum > h.count {
            return Err(format!(
                "histogram {name:?}: bucket sum {bucket_sum} exceeds count {}",
                h.count
            ));
        }
    }
    Ok(out)
}

impl Histogram {
    /// Point-in-time copy: totals plus the non-empty buckets in index
    /// order. Taken bucket-by-bucket with relaxed loads, so under
    /// concurrent recording the totals may run slightly ahead of the
    /// bucket sum (the same tolerance [`parse_exposition`] allows).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            buckets: Vec::new(),
        };
        self.for_each_bucket(|index, count| {
            let (lo, hi) = bucket_bounds(index);
            snap.buckets.push(BucketEntry { index, lo, hi, count });
        });
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("served").add(3);
        reg.gauge("queue_depth").set(-1);
        let h = reg.histogram("latency_us");
        h.record(10);
        h.record(10);
        h.record(30);
        reg
    }

    #[test]
    fn expose_then_parse_roundtrips() {
        let reg = sample_registry();
        let text = expose(&reg);
        let parsed = parse_exposition(&text).unwrap();
        assert_eq!(parsed.counters["served"], 3);
        assert_eq!(parsed.gauges["queue_depth"], -1);
        let h = &parsed.histograms["latency_us"];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 50);
        assert_eq!(h.max, 30);
        assert_eq!(h.buckets.len(), 2);
        assert_eq!(h.buckets[0], BucketEntry { index: 10, lo: 10, hi: 11, count: 2 });
        assert_eq!(h.quantile(0.5), 10);
        assert_eq!(h.quantile(1.0), 30);
    }

    #[test]
    fn exposition_is_deterministic_and_framed() {
        let a = expose(&sample_registry());
        let b = expose(&sample_registry());
        assert_eq!(a, b);
        assert!(a.starts_with("# sekitei-metrics v1\n"));
        assert!(a.ends_with("# end sekitei-metrics\n"));
    }

    #[test]
    fn snapshot_quantile_matches_live_histogram() {
        let h = Histogram::new();
        for v in [1u64, 5, 7, 90, 4096, 70_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), h.quantile(q), "q={q}");
        }
    }

    #[test]
    fn parse_rejects_malformed_expositions() {
        let good = expose(&sample_registry());
        // Truncation: drop the footer.
        let truncated = good.strip_suffix("# end sekitei-metrics\n").unwrap();
        assert!(parse_exposition(truncated).unwrap_err().contains("footer"));
        // Wrong header.
        assert!(parse_exposition("# sekitei-metrics v9\ncounter a 1\n# end sekitei-metrics\n")
            .unwrap_err()
            .contains("header"));
        // Orphan bucket line (no preceding histogram).
        let orphan = "# sekitei-metrics v1\nbucket latency_us 10 10 11 2\n# end sekitei-metrics\n";
        assert!(parse_exposition(orphan).unwrap_err().contains("not under"));
        // Bucket bounds that disagree with the layout.
        let bad_bounds =
            good.replace("bucket latency_us 10 10 11 2", "bucket latency_us 10 9 11 2");
        assert!(parse_exposition(&bad_bounds).unwrap_err().contains("disagree"));
        // Bucket sum exceeding the declared count.
        let overrun = good.replace("count=3", "count=1");
        assert!(parse_exposition(&overrun).unwrap_err().contains("exceeds"));
        // Unknown line kind.
        let unknown = "# sekitei-metrics v1\nblorp x 1\n# end sekitei-metrics\n";
        assert!(parse_exposition(unknown).unwrap_err().contains("unknown line kind"));
    }

    #[test]
    fn scrape_race_tolerance_totals_may_lead_buckets() {
        // count ahead of bucket sum parses (racing record); behind fails.
        let lead = "# sekitei-metrics v1\nhistogram h count=3 sum=30 max=10\nbucket h 10 10 11 2\n# end sekitei-metrics\n";
        assert!(parse_exposition(lead).is_ok());
    }
}
