//! Structured tracing: spans, events, per-thread lock-free rings, collector.
//!
//! Recording is designed to be safe to leave compiled into hot paths:
//! every entry point first checks a process-wide enable counter (a single
//! relaxed atomic load) and returns immediately when tracing is off, so
//! the disabled cost is a branch. When enabled, each thread appends fixed
//! 7-word records to its own bounded ring without taking any lock; a
//! collector ([`take_trace`]) drains all rings into a [`Trace`].
//!
//! The ring is single-producer (the owning thread) / single-consumer (the
//! collector, serialized by a mutex). The producer publishes a record by
//! storing the data words and then bumping `head` with `Release`; the
//! consumer loads `head` with `Acquire`, which makes every data word of
//! records below `head` visible. When the ring is full new records are
//! dropped (never overwriting unread ones) and counted, so a stalled
//! collector degrades to a truncated-but-valid trace.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, LazyLock, Mutex};
use std::time::Instant;

/// Records per thread ring; full rings drop (and count) new records.
const RING_CAP: usize = 8192;

const KIND_SPAN: u64 = 0;
const KIND_AGG: u64 = 1;
const KIND_EVENT: u64 = 2;

// ---------------------------------------------------------------------------
// Global state: enable counter, epoch, span ids, name interner, ring registry
// ---------------------------------------------------------------------------

/// Nesting counter so concurrent users (e.g. parallel tests) don't turn
/// each other's tracing off: tracing is on while the counter is > 0.
static ENABLED: AtomicUsize = AtomicUsize::new(0);

static EPOCH: LazyLock<Instant> = LazyLock::new(Instant::now);

/// Span/aggregate id allocator; 0 is reserved for "no parent".
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

static INTERNER: LazyLock<Mutex<Interner>> =
    LazyLock::new(|| Mutex::new(Interner { by_name: HashMap::new(), names: Vec::new() }));

static RINGS: LazyLock<Mutex<Vec<Arc<Ring>>>> = LazyLock::new(|| Mutex::new(Vec::new()));

/// Serializes collectors: one `take_trace` at a time.
static COLLECT: Mutex<()> = Mutex::new(());

struct Interner {
    by_name: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn intern(name: &'static str) -> u64 {
    let mut i = INTERNER.lock().unwrap();
    if let Some(&id) = i.by_name.get(name) {
        return id as u64;
    }
    let id = i.names.len() as u32;
    i.names.push(name);
    i.by_name.insert(name, id);
    id as u64
}

/// Turn tracing on. Nests: tracing stays on until every `enable` has been
/// matched by a [`disable`].
pub fn enable() {
    ENABLED.fetch_add(1, Ordering::SeqCst);
}

/// Match one prior [`enable`]. Saturates at zero.
pub fn disable() {
    let _ = ENABLED.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1));
}

/// Is tracing currently on? A single relaxed load — cheap enough to guard
/// hot-path instrumentation.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) > 0
}

/// Nanoseconds since the process-wide trace epoch (first observability use).
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Per-thread ring
// ---------------------------------------------------------------------------

/// One fixed 7-word record: kind, id, parent, name, t, v, count.
struct Slot([AtomicU64; 7]);

struct Ring {
    thread: usize,
    slots: Box<[Slot]>,
    /// Records ever pushed (producer-owned, published with Release).
    head: AtomicU64,
    /// Records consumed (collector-owned).
    drained: AtomicU64,
    /// Records rejected because the ring was full.
    dropped: AtomicU64,
}

impl Ring {
    fn new(thread: usize) -> Self {
        let slots = (0..RING_CAP)
            .map(|_| Slot(std::array::from_fn(|_| AtomicU64::new(0))))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring {
            thread,
            slots,
            head: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Producer-side append; only ever called from the owning thread.
    fn push(&self, words: [u64; 7]) {
        let head = self.head.load(Ordering::Relaxed);
        // A stale `drained` only makes this check conservative (drops early).
        if head - self.drained.load(Ordering::Relaxed) >= RING_CAP as u64 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let slot = &self.slots[(head % RING_CAP as u64) as usize];
        for (w, val) in slot.0.iter().zip(words) {
            w.store(val, Ordering::Relaxed);
        }
        self.head.store(head + 1, Ordering::Release);
    }
}

struct ThreadCtx {
    ring: Arc<Ring>,
    /// Open span ids, innermost last.
    stack: Vec<u64>,
}

thread_local! {
    static CTX: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

/// Run `f` with this thread's context, registering a fresh ring on first
/// use. Returns `None` if the thread-local is already torn down (records
/// emitted from TLS destructors are silently discarded).
fn with_ctx<R>(f: impl FnOnce(&mut ThreadCtx) -> R) -> Option<R> {
    CTX.try_with(|cell| {
        let mut ctx = cell.borrow_mut();
        let ctx = ctx.get_or_insert_with(|| {
            let mut rings = RINGS.lock().unwrap();
            let ring = Arc::new(Ring::new(rings.len()));
            rings.push(Arc::clone(&ring));
            ThreadCtx { ring, stack: Vec::new() }
        });
        f(ctx)
    })
    .ok()
}

// ---------------------------------------------------------------------------
// Recording API
// ---------------------------------------------------------------------------

/// RAII handle for an open span; emits the span record (with its measured
/// duration) when dropped.
pub struct SpanGuard {
    id: u64,
    parent: u64,
    name: u64,
    start: u64,
}

/// Open a span named `name` under the current thread's innermost open
/// span. No-op (and near-free) while tracing is disabled.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { id: 0, parent: 0, name: 0, start: 0 };
    }
    let name = intern(name);
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = with_ctx(|ctx| {
        let parent = ctx.stack.last().copied().unwrap_or(0);
        ctx.stack.push(id);
        parent
    })
    .unwrap_or(0);
    SpanGuard { id, parent, name, start: now_ns() }
}

impl SpanGuard {
    /// This span's id, for out-of-band correlation. 0 for inert guards.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        let dur = now_ns().saturating_sub(self.start);
        with_ctx(|ctx| {
            // rposition (not a plain pop): guards may be dropped out of
            // order under early returns; remove *this* span specifically.
            if let Some(pos) = ctx.stack.iter().rposition(|&s| s == self.id) {
                ctx.stack.remove(pos);
            }
            ctx.ring.push([KIND_SPAN, self.id, self.parent, self.name, self.start, dur, 1]);
        });
    }
}

/// Record a point event `name = value` under the innermost open span.
pub fn event(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    let name = intern(name);
    with_ctx(|ctx| {
        let parent = ctx.stack.last().copied().unwrap_or(0);
        ctx.ring.push([KIND_EVENT, 0, parent, name, now_ns(), value, 1]);
    });
}

/// Record an *aggregate span*: a phase whose `dur_ns` total was measured
/// externally over `count` interleaved slices (e.g. SLRG query time inside
/// the RG search loop, or candidate concretization). It appears in the
/// trace as a child span of the innermost open span, so generic self-time
/// accounting subtracts it from its parent like any nested span.
pub fn aggregate(name: &'static str, start_ns: u64, dur_ns: u64, count: u64) {
    if !enabled() {
        return;
    }
    let name = intern(name);
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    with_ctx(|ctx| {
        let parent = ctx.stack.last().copied().unwrap_or(0);
        ctx.ring.push([KIND_AGG, id, parent, name, start_ns, dur_ns, count]);
    });
}

// ---------------------------------------------------------------------------
// Collector and Trace
// ---------------------------------------------------------------------------

/// Record kind within a drained [`Trace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// A closed span measured in-process by its [`SpanGuard`].
    Span,
    /// An aggregate pseudo-span (externally measured interleaved phase).
    Aggregate,
    /// A point event carrying a value.
    Event,
}

/// One drained trace record.
#[derive(Clone, Debug)]
pub struct Record {
    pub kind: RecordKind,
    /// Span id (0 for events).
    pub id: u64,
    /// Enclosing span id; 0 = top level.
    pub parent: u64,
    pub name: &'static str,
    /// Ring index of the emitting thread.
    pub thread: usize,
    /// Start (spans) or occurrence (events) time, ns since trace epoch.
    pub t_ns: u64,
    /// Duration in ns (spans/aggregates) or the event value.
    pub value: u64,
    /// Slices folded into an aggregate; 1 for plain spans and events.
    pub count: u64,
}

impl Record {
    pub fn is_span(&self) -> bool {
        matches!(self.kind, RecordKind::Span | RecordKind::Aggregate)
    }
}

/// A drained, structured trace: every record pushed (and not yet drained
/// by an earlier collector) since the last [`take_trace`].
#[derive(Clone, Debug, Default)]
pub struct Trace {
    pub records: Vec<Record>,
    /// Records lost to full rings over the drained window.
    pub dropped: u64,
}

/// Drain every thread ring into a [`Trace`]. Draining consumes: a second
/// call returns only records pushed after the first. Collectors are
/// serialized process-wide.
pub fn take_trace() -> Trace {
    let _guard = COLLECT.lock().unwrap();
    let rings: Vec<Arc<Ring>> = RINGS.lock().unwrap().clone();
    let names: Vec<&'static str> = INTERNER.lock().unwrap().names.clone();
    let mut records = Vec::new();
    let mut dropped = 0;
    for ring in &rings {
        let head = ring.head.load(Ordering::Acquire);
        let drained = ring.drained.load(Ordering::Relaxed);
        for i in drained..head {
            let slot = &ring.slots[(i % RING_CAP as u64) as usize];
            let w: Vec<u64> = slot.0.iter().map(|w| w.load(Ordering::Relaxed)).collect();
            let kind = match w[0] {
                KIND_SPAN => RecordKind::Span,
                KIND_AGG => RecordKind::Aggregate,
                _ => RecordKind::Event,
            };
            records.push(Record {
                kind,
                id: w[1],
                parent: w[2],
                name: names.get(w[3] as usize).copied().unwrap_or("?"),
                thread: ring.thread,
                t_ns: w[4],
                value: w[5],
                count: w[6],
            });
        }
        ring.drained.store(head, Ordering::Relaxed);
        dropped += ring.dropped.swap(0, Ordering::Relaxed);
    }
    records.sort_by_key(|r| (r.t_ns, r.id));
    Trace { records, dropped }
}

impl Trace {
    /// Sum of durations of all spans/aggregates named `name`.
    pub fn span_total_ns(&self, name: &str) -> u64 {
        self.records.iter().filter(|r| r.is_span() && r.name == name).map(|r| r.value).sum()
    }

    /// Sum over spans named `name` of duration minus direct-child span
    /// durations (the time spent in the span itself).
    pub fn span_self_ns(&self, name: &str) -> u64 {
        self.records
            .iter()
            .filter(|r| r.is_span() && r.name == name)
            .map(|r| {
                let child: u64 = self
                    .records
                    .iter()
                    .filter(|c| c.is_span() && c.parent == r.id)
                    .map(|c| c.value)
                    .sum();
                r.value.saturating_sub(child)
            })
            .sum()
    }

    /// Sum of values of all events named `name`.
    pub fn event_sum(&self, name: &str) -> u64 {
        self.records
            .iter()
            .filter(|r| r.kind == RecordKind::Event && r.name == name)
            .map(|r| r.value)
            .sum()
    }

    /// Number of spans/aggregates named `name`.
    pub fn span_count(&self, name: &str) -> usize {
        self.records.iter().filter(|r| r.is_span() && r.name == name).count()
    }

    /// JSON-lines export: one object per record plus a trailing `meta`
    /// line with the drop count. Spans and aggregates both render as
    /// `"type":"span"` (aggregates carry their slice `count`).
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            match r.kind {
                RecordKind::Span | RecordKind::Aggregate => out.push_str(&format!(
                    "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"thread\":{},\
                     \"start_ns\":{},\"dur_ns\":{},\"count\":{}}}\n",
                    r.id, r.parent, r.name, r.thread, r.t_ns, r.value, r.count
                )),
                RecordKind::Event => out.push_str(&format!(
                    "{{\"type\":\"event\",\"parent\":{},\"name\":\"{}\",\"thread\":{},\
                     \"t_ns\":{},\"value\":{}}}\n",
                    r.parent, r.name, r.thread, r.t_ns, r.value
                )),
            }
        }
        if self.dropped > 0 {
            // Explicit footer record so consumers that stream records (and
            // never look at `meta`) still see the loss instead of a
            // silently truncated trace.
            out.push_str(&format!(
                "{{\"type\":\"dropped\",\"count\":{},\"ring_cap\":{}}}\n",
                self.dropped, RING_CAP
            ));
        }
        out.push_str(&format!(
            "{{\"type\":\"meta\",\"records\":{},\"dropped\":{}}}\n",
            self.records.len(),
            self.dropped
        ));
        out
    }

    /// If any records were lost to full rings over this trace's window,
    /// say so on stderr (once, with the ring capacity so the reader knows
    /// the ceiling they hit). Returns whether a warning was printed.
    pub fn warn_if_dropped(&self) -> bool {
        if self.dropped == 0 {
            return false;
        }
        eprintln!(
            "warning: trace ring overflow — {} record(s) dropped (per-thread ring \
             capacity {RING_CAP}); the exported trace is truncated",
            self.dropped
        );
        true
    }

    /// Human-readable indented tree. Spans whose parent is absent from the
    /// trace (e.g. still open when drained) render as roots.
    pub fn render_tree(&self) -> String {
        let ids: std::collections::HashSet<u64> =
            self.records.iter().filter(|r| r.is_span()).map(|r| r.id).collect();
        let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut roots = Vec::new();
        for (i, r) in self.records.iter().enumerate() {
            if r.parent != 0 && ids.contains(&r.parent) {
                children.entry(r.parent).or_default().push(i);
            } else {
                roots.push(i);
            }
        }
        let mut out = String::new();
        for root in roots {
            self.render_node(root, 0, &children, &mut out);
        }
        out
    }

    fn render_node(
        &self,
        idx: usize,
        depth: usize,
        children: &HashMap<u64, Vec<usize>>,
        out: &mut String,
    ) {
        let r = &self.records[idx];
        let pad = "  ".repeat(depth);
        match r.kind {
            RecordKind::Span => {
                out.push_str(&format!("{pad}{} {:.3} ms\n", r.name, r.value as f64 / 1e6));
            }
            RecordKind::Aggregate => {
                out.push_str(&format!(
                    "{pad}{} {:.3} ms (aggregate of {})\n",
                    r.name,
                    r.value as f64 / 1e6,
                    r.count
                ));
            }
            RecordKind::Event => {
                out.push_str(&format!("{pad}{} = {}\n", r.name, r.value));
                return;
            }
        }
        if let Some(kids) = children.get(&r.id) {
            for &k in kids {
                self.render_node(k, depth + 1, children, out);
            }
        }
    }

    /// Per-phase breakdown table under the spans named `root`: one row per
    /// descendant span name with its *self* time (duration minus nested
    /// span durations), so the phase column always sums to at most the
    /// root total. Rows appear in first-start order.
    pub fn phase_table(&self, root: &str) -> String {
        let root_ids: std::collections::HashSet<u64> =
            self.records.iter().filter(|r| r.is_span() && r.name == root).map(|r| r.id).collect();
        let total: u64 =
            self.records.iter().filter(|r| r.is_span() && r.name == root).map(|r| r.value).sum();
        // Transitive descendants of the root spans.
        let mut inside = root_ids.clone();
        loop {
            let before = inside.len();
            for r in self.records.iter().filter(|r| r.is_span()) {
                if inside.contains(&r.parent) {
                    inside.insert(r.id);
                }
            }
            if inside.len() == before {
                break;
            }
        }
        // Accumulate self time per descendant name, first-start order.
        let mut order: Vec<&'static str> = Vec::new();
        let mut self_ns: HashMap<&'static str, u64> = HashMap::new();
        let mut counts: HashMap<&'static str, u64> = HashMap::new();
        for r in self.records.iter().filter(|r| r.is_span()) {
            if !inside.contains(&r.id) || root_ids.contains(&r.id) {
                continue;
            }
            let child: u64 = self
                .records
                .iter()
                .filter(|c| c.is_span() && c.parent == r.id)
                .map(|c| c.value)
                .sum();
            if !self_ns.contains_key(r.name) {
                order.push(r.name);
            }
            *self_ns.entry(r.name).or_insert(0) += r.value.saturating_sub(child);
            *counts.entry(r.name).or_insert(0) += r.count;
        }
        let mut out = format!("{:<14}{:>12}{:>10}\n", "phase", "wall_ms", "count");
        let mut phase_sum = 0u64;
        for name in &order {
            let ns = self_ns[name];
            phase_sum += ns;
            out.push_str(&format!("{:<14}{:>12.3}{:>10}\n", name, ns as f64 / 1e6, counts[name]));
        }
        out.push_str(&format!("{:<14}{:>12.3}\n", "phase sum", phase_sum as f64 / 1e6));
        out.push_str(&format!("{:<14}{:>12.3}\n", format!("total ({root})"), total as f64 / 1e6));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace state is process-global; tests that drain it must not run
    // concurrently with each other.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn spans_nest_and_drain() {
        let _s = SERIAL.lock().unwrap();
        enable();
        let _ = take_trace(); // start from a clean window
        {
            let _outer = span("outer");
            event("tick", 7);
            {
                let _inner = span("inner");
            }
        }
        let trace = take_trace();
        disable();
        assert_eq!(trace.span_count("outer"), 1);
        assert_eq!(trace.span_count("inner"), 1);
        assert_eq!(trace.event_sum("tick"), 7);
        let outer = trace.records.iter().find(|r| r.name == "outer" && r.is_span()).unwrap();
        let inner = trace.records.iter().find(|r| r.name == "inner" && r.is_span()).unwrap();
        let tick = trace.records.iter().find(|r| r.name == "tick").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(tick.parent, outer.id);
        assert!(outer.value >= inner.value, "outer span covers inner");
        assert!(trace.span_self_ns("outer") <= outer.value);
    }

    #[test]
    fn aggregates_count_against_parent_self_time() {
        let _s = SERIAL.lock().unwrap();
        enable();
        let _ = take_trace();
        {
            let _p = span("parent");
            let t = now_ns();
            aggregate("slice", t, 1_000, 42);
        }
        let trace = take_trace();
        disable();
        let slice = trace.records.iter().find(|r| r.name == "slice").unwrap();
        assert_eq!(slice.kind, RecordKind::Aggregate);
        assert_eq!(slice.count, 42);
        assert_eq!(slice.value, 1_000);
        let parent = trace.records.iter().find(|r| r.name == "parent").unwrap();
        assert_eq!(slice.parent, parent.id);
        assert!(trace.span_self_ns("parent") <= parent.value.saturating_sub(0));
    }

    #[test]
    fn disabled_records_nothing() {
        let _s = SERIAL.lock().unwrap();
        let _ = take_trace();
        {
            let _g = span("invisible");
            event("invisible_event", 1);
        }
        let trace = take_trace();
        assert_eq!(trace.span_count("invisible"), 0);
        assert_eq!(trace.event_sum("invisible_event"), 0);
    }

    #[test]
    fn json_lines_parse_shape() {
        let _s = SERIAL.lock().unwrap();
        enable();
        let _ = take_trace();
        {
            let _g = span("jsonspan");
            event("jsonev", 3);
        }
        let trace = take_trace();
        disable();
        let text = trace.to_json_lines();
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "line {line:?}");
        }
        assert!(text.contains("\"name\":\"jsonspan\""));
        assert!(text.contains("\"type\":\"meta\""));
    }

    #[test]
    fn phase_table_sums_within_total() {
        let _s = SERIAL.lock().unwrap();
        enable();
        let _ = take_trace();
        {
            let _root = span("root_pt");
            {
                let _a = span("pt_a");
                std::hint::black_box(0);
            }
            let t = now_ns();
            aggregate("pt_b", t, 500, 3);
        }
        let trace = take_trace();
        disable();
        let table = trace.phase_table("root_pt");
        assert!(table.contains("pt_a"));
        assert!(table.contains("pt_b"));
        let total = trace.span_total_ns("root_pt");
        let sum = trace.span_self_ns("pt_a") + trace.span_self_ns("pt_b");
        assert!(sum <= total, "phase sum {sum} must be <= total {total}");
    }

    #[test]
    fn ring_overflow_drops_and_counts() {
        let _s = SERIAL.lock().unwrap();
        enable();
        let _ = take_trace();
        for i in 0..(RING_CAP as u64 + 100) {
            event("flood", i);
        }
        let trace = take_trace();
        disable();
        assert!(trace.dropped >= 100, "expected >= 100 drops, got {}", trace.dropped);
        let flood = trace.records.iter().filter(|r| r.name == "flood").count();
        assert!(flood <= RING_CAP);
        // The loss is surfaced, not silent: an explicit `dropped` footer
        // record precedes the meta line, and the stderr warning fires.
        let text = trace.to_json_lines();
        let lines: Vec<&str> = text.lines().collect();
        assert!(
            lines[lines.len() - 2].starts_with("{\"type\":\"dropped\",\"count\":"),
            "missing dropped footer: {:?}",
            lines[lines.len() - 2]
        );
        assert!(lines[lines.len() - 1].starts_with("{\"type\":\"meta\""));
        assert!(trace.warn_if_dropped());
        // Next window starts clean: no drops, no footer, no warning.
        let trace = take_trace();
        assert_eq!(trace.dropped, 0);
        assert!(!trace.to_json_lines().contains("\"type\":\"dropped\""));
        assert!(!trace.warn_if_dropped());
    }
}
