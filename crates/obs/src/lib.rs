//! `sekitei-obs` — the unified observability layer for the Sekitei stack.
//!
//! Std-only (zero external deps), two halves:
//!
//! * [`trace`]: structured spans and events. Instrumented code opens
//!   [`span`]s (RAII guards with thread-local nesting) and emits
//!   [`event`]s; both write fixed-size records into a lock-free bounded
//!   ring per thread. Recording is globally gated by [`enable`] /
//!   [`disable`] (a nesting counter), and costs a single relaxed atomic
//!   load when off — instrumentation stays compiled into release hot
//!   paths. [`take_trace`] drains every ring into a [`Trace`] that can
//!   render as JSON-lines ([`Trace::to_json_lines`]), an indented tree
//!   ([`Trace::render_tree`]), or a per-phase profile
//!   ([`Trace::phase_table`]). Interleaved phases measured externally
//!   (e.g. SLRG query time inside the RG loop) enter via [`aggregate`]
//!   pseudo-spans so self-time accounting stays exact.
//!
//! * [`metrics`]: a [`MetricsRegistry`] of named [`Counter`]s,
//!   [`Gauge`]s, and log-linear [`Histogram`]s (bounded relative error,
//!   built for p50/p95/p99 summaries). Registries are instantiable, not
//!   global: each subsystem owns its own. [`Histogram::merge`] folds
//!   per-worker shards into one population, and [`expo`] renders a
//!   registry in a versioned line-oriented text exposition
//!   ([`expose`]) with a strict parser ([`parse_exposition`]) so a
//!   live server can be scraped over the wire.
//!
//! The intended division of labor: *traces* answer "where did this one
//! run spend its time" (profiling, `--trace-json`), *metrics* answer
//! "what does the population look like" (server stats, latency
//! percentiles).

pub mod expo;
pub mod metrics;
pub mod trace;

pub use expo::{
    expose, parse_exposition, BucketEntry, Exposition, HistogramSnapshot, EXPOSITION_VERSION,
};
pub use metrics::{
    bucket_bounds, bucket_index, Counter, Gauge, Histogram, MetricView, MetricsRegistry,
};
pub use trace::{
    aggregate, disable, enable, enabled, event, now_ns, span, take_trace, Record, RecordKind,
    SpanGuard, Trace,
};
