//! Property tests for the log-linear histogram: bucket containment and
//! quantile accuracy (within one bucket width of exact) on random sample
//! sets spanning the exact and log-linear regions.

use proptest::prelude::*;
use sekitei_obs::{bucket_bounds, bucket_index, Histogram};

/// Samples across both histogram regions and several octaves, biased
/// toward small values (latency-shaped) but reaching past 2^40.
fn arb_sample() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,                        // exact region
        64u64..4096,                     // low log-linear octaves
        4096u64..1_000_000,              // microsecond-latency magnitudes
        1_000_000u64..1_099_511_627_776  // up to 2^40
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sample_lands_in_containing_bucket(v in arb_sample()) {
        let i = bucket_index(v);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v, "bucket {i} = [{lo}, {hi}) excludes {v} from below");
        prop_assert!(v < hi || hi == u64::MAX, "bucket {i} = [{lo}, {hi}) excludes {v} from above");
    }

    #[test]
    fn quantile_within_one_bucket_width(
        samples in proptest::collection::vec(arb_sample(), 1..200),
        q in 0.01..1.0f64,
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        // Exact nearest-rank quantile, same rank definition as the histogram.
        let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let est = h.quantile(q);
        // The estimate is the lower bound of the bucket containing the
        // exact answer, so it is below it by less than one bucket width.
        let (lo, hi) = bucket_bounds(bucket_index(exact));
        let width = hi - lo;
        prop_assert!(est <= exact, "estimate {est} above exact {exact}");
        prop_assert!(
            exact - est < width,
            "estimate {est} more than one bucket width ({width}) below exact {exact}"
        );
    }

    #[test]
    fn merge_is_bucketwise_sum_with_pooled_quantiles(
        left in proptest::collection::vec(arb_sample(), 0..150),
        right in proptest::collection::vec(arb_sample(), 0..150),
        q in 0.01..1.0f64,
    ) {
        let a = Histogram::new();
        let b = Histogram::new();
        let pooled = Histogram::new();
        for &s in &left {
            a.record(s);
            pooled.record(s);
        }
        for &s in &right {
            b.record(s);
            pooled.record(s);
        }
        a.merge(&b);

        // Merged bucket counts equal the bucketwise sums of the shards
        // (the pooled histogram IS that sum, bucket by bucket).
        let mut merged = Vec::new();
        a.for_each_bucket(|i, c| merged.push((i, c)));
        let mut expected = Vec::new();
        pooled.for_each_bucket(|i, c| expected.push((i, c)));
        prop_assert_eq!(merged, expected);
        prop_assert_eq!(a.count(), pooled.count());
        prop_assert_eq!(a.sum(), pooled.sum());
        prop_assert_eq!(a.max(), pooled.max());

        // Quantiles of the merged histogram stay within one bucket width
        // of the exact pooled-stream quantile.
        let mut sorted: Vec<u64> = left.iter().chain(right.iter()).copied().collect();
        if !sorted.is_empty() {
            sorted.sort_unstable();
            let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = a.quantile(q);
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            let width = hi - lo;
            prop_assert!(est <= exact, "estimate {} above exact {}", est, exact);
            prop_assert!(
                exact - est < width,
                "estimate {} more than one bucket width ({}) below exact {}", est, width, exact
            );
        }
    }

    #[test]
    fn count_sum_max_track_inputs(samples in proptest::collection::vec(arb_sample(), 0..100)) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum(), samples.iter().sum::<u64>());
        prop_assert_eq!(h.max(), samples.iter().copied().max().unwrap_or(0));
    }
}
