//! # sekitei-util
//!
//! Dependency-free utilities shared across the workspace. Today that is
//! exactly one thing: the seeded [`rng::SplitMix64`] generator that both
//! the churn event generator and the anytime planner's stochastic
//! local-search lane draw from, so every seeded component in the stack
//! uses one audited implementation with one reference test.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod rng;

pub use rng::SplitMix64;
