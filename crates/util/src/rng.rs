//! Seeded pseudorandom numbers for deterministic components.
//!
//! Everything seeded in the workspace — churn traces, the anytime SLS
//! lane — derives from one [`SplitMix64`] stream per component, so a
//! `(inputs, seed)` pair always reproduces the same behaviour byte for
//! byte. The generator lives here (rather than in a consumer crate) so
//! there is exactly one implementation to audit against the published
//! reference sequence.

/// SplitMix64 (Steele et al., "Fast splittable pseudorandom number
/// generators"): 64 bits of state, passes BigCrush, and trivially
/// self-contained — the workspace has no real `rand` crate to lean on.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`. Modulo bias is irrelevant at trace sizes.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // reference sequence for seed 1234567 from the published algorithm
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        let u = SplitMix64::new(42).unit();
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn unit_and_range_stay_in_bounds() {
        let mut r = SplitMix64::new(99);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            let x = r.in_range(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
            assert!(r.below(7) < 7);
        }
    }
}
