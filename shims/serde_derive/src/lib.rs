//! No-op `serde_derive` stand-in for offline builds.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata
//! (no serializer is ever instantiated), so the derives accept the usual
//! `#[serde(...)]` attributes and expand to nothing.

#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
