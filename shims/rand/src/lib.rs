//! Offline stand-in for the subset of `rand` 0.10 used by the workspace:
//! `rngs::StdRng`, [`SeedableRng::seed_from_u64`], and [`RngExt`]'s
//! `random::<T>()` / `random_range(..)`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed, which is all the topology generators require. Streams
//! differ from crates-io `rand`, so seeded topologies are stable only
//! within this workspace.

#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
/// Pseudo-random generators.
pub mod rngs {
    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Seedable construction (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        rngs::StdRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }
}

/// Types samplable uniformly by [`RngExt::random`].
pub trait Random: Sized {
    /// Draw one value from a 64-bit word source.
    fn sample(next: &mut impl FnMut() -> u64) -> Self;
}

impl Random for u64 {
    fn sample(next: &mut impl FnMut() -> u64) -> Self {
        next()
    }
}

impl Random for u32 {
    fn sample(next: &mut impl FnMut() -> u64) -> Self {
        (next() >> 32) as u32
    }
}

impl Random for bool {
    fn sample(next: &mut impl FnMut() -> u64) -> Self {
        next() & 1 == 1
    }
}

impl Random for f64 {
    fn sample(next: &mut impl FnMut() -> u64) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn sample(next: &mut impl FnMut() -> u64) -> Self {
        (next() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait RandomRange {
    /// The sampled value type.
    type Output;
    /// Draw one value from the range.
    fn sample(self, next: &mut impl FnMut() -> u64) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl RandomRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, next: &mut impl FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end - self.start) as u64;
                self.start + (next() % span) as $t
            }
        }
        impl RandomRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, next: &mut impl FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty random_range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    return (next() as $t).wrapping_add(lo);
                }
                lo + (next() % span) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

impl RandomRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample(self, next: &mut impl FnMut() -> u64) -> f64 {
        let u = f64::sample(next);
        self.start + u * (self.end - self.start)
    }
}

/// Sampling methods (stand-in for `rand::RngExt` / `rand::Rng`).
pub trait RngExt {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of `T`.
    fn random<T: Random>(&mut self) -> T {
        let mut next = || self.next_u64();
        T::sample(&mut next)
    }

    /// Uniform sample from a range.
    fn random_range<R: RandomRange>(&mut self, range: R) -> R::Output {
        let mut next = || self.next_u64();
        range.sample(&mut next)
    }
}

impl RngExt for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval() {
        let mut r = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = r.random_range(0.5..2.5f64);
            assert!((0.5..2.5).contains(&y));
            let z = r.random_range(1..=6u32);
            assert!((1..=6).contains(&z));
        }
    }
}
