//! Offline stand-in for the subset of `criterion` the bench targets use:
//! [`Criterion`], benchmark groups, [`BenchmarkId`], [`Throughput`],
//! `criterion_group!`/`criterion_main!`, and `Bencher::iter`.
//!
//! Measurement is deliberately simple — a warm-up pass followed by a fixed
//! number of timed samples, reporting the median per-iteration time. No
//! statistics, plots, or state files; the point is that `cargo bench` runs
//! and prints comparable numbers in an offline container.

#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
use std::time::{Duration, Instant};

/// Per-iteration timer handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    /// Time `f`, recording per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warm-up and calibration: aim for ~10ms per sample
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let per_sample = (Duration::from_millis(10).as_nanos() / once.as_nanos()).max(1) as u64;
        self.iters_per_sample = per_sample;
        self.samples.clear();
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(f());
            }
            self.samples.push(t.elapsed() / per_sample as u32);
        }
    }

    fn median(&self) -> Option<Duration> {
        let mut s = self.samples.clone();
        if s.is_empty() {
            return None;
        }
        s.sort();
        Some(s[s.len() / 2])
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Throughput annotation (accepted and echoed, not normalized).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The benchmark driver.
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 10 }
    }
}

impl Criterion {
    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.into().0, self.sample_count, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: self.sample_count,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_count: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.clamp(2, 100);
        self
    }

    /// Set a target measurement time (accepted for compatibility; the shim
    /// sizes samples itself).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_one(full, self.sample_count, self.throughput, f);
        self
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_one(full, self.sample_count, self.throughput, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: String,
    sample_count: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher { samples: Vec::new(), iters_per_sample: 1, sample_count };
    f(&mut b);
    match b.median() {
        Some(med) => {
            let extra = match throughput {
                Some(Throughput::Bytes(n)) if med.as_secs_f64() > 0.0 => {
                    format!("  ({:.1} MiB/s)", n as f64 / med.as_secs_f64() / (1 << 20) as f64)
                }
                Some(Throughput::Elements(n)) if med.as_secs_f64() > 0.0 => {
                    format!("  ({:.0} elem/s)", n as f64 / med.as_secs_f64())
                }
                _ => String::new(),
            };
            println!(
                "bench: {id:<50} {:>12.3} µs/iter  [{} samples x {} iters]{extra}",
                med.as_secs_f64() * 1e6,
                sample_count,
                b.iters_per_sample,
            );
        }
        None => println!("bench: {id:<50} (no samples)"),
    }
}

/// Re-export for closures that want `criterion::black_box`.
pub use std::hint::black_box;

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Produce `main` from benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function(BenchmarkId::from_parameter("x"), |b| {
            b.iter(|| std::hint::black_box(2u64 + 2));
        });
        g.finish();
        c.bench_function("plain", |b| b.iter(|| ()));
    }
}
