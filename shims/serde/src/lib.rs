//! Offline stand-in for the `serde` facade.
//!
//! The workspace derives `Serialize`/`Deserialize` on model types but never
//! drives an actual serializer (there is no `serde_json` dependency), so the
//! traits are empty markers and the derives are no-ops. If real
//! serialization is ever needed, swap this shim for the crates-io `serde`
//! in the workspace `Cargo.toml`.

#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
