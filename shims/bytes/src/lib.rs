//! Offline stand-in for the subset of the `bytes` crate used by the wire
//! codec: [`Bytes`], [`BytesMut`], big-endian [`Buf`]/[`BufMut`] primitive
//! accessors, and slice readers.

#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
use std::ops::Deref;

/// Immutable byte buffer (stand-in for `bytes::Bytes`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copy into a plain vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// Growable byte buffer (stand-in for `bytes::BytesMut`).
#[derive(Debug, Clone, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// New buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Byte-sink trait (stand-in for `bytes::BufMut`; all integers big-endian).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Byte-source trait (stand-in for `bytes::Buf`; all integers big-endian).
///
/// Accessors panic when underrun, exactly like the real crate — callers are
/// expected to check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copy `dst.len()` bytes out and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Read a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underrun");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u32(0xDEADBEEF);
        b.put_f64(1.5);
        b.put_slice(b"xyz");
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEADBEEF);
        assert_eq!(r.get_f64(), 1.5);
        let mut s = [0u8; 3];
        r.copy_to_slice(&mut s);
        assert_eq!(&s, b"xyz");
        assert_eq!(r.remaining(), 0);
    }
}
