//! Offline mini-proptest.
//!
//! Implements the `proptest` macro surface the workspace uses —
//! `proptest! { #[test] fn f(x in strategy, ...) { ... } }`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_oneof!`, `Just`, range strategies, tuples,
//! `prop_map`, `prop_recursive`, `collection::vec`, and `any::<T>()` — on a
//! deterministic SplitMix64 generator, without shrinking. Each test case is
//! seeded from the test's name and case index, so failures reproduce
//! exactly on rerun; set `PROPTEST_SEED` to shift the whole stream.

#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
use std::rc::Rc;

/// Deterministic per-case random source.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Build a generator for one `(test, case)` pair.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let env =
            std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse::<u64>().ok()).unwrap_or(0);
        TestRng { state: h ^ case.wrapping_mul(0x9E3779B97F4A7C15) ^ env }
    }

    /// Next raw 64-bit word (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// Runner configuration and failure types.
pub mod test_runner {
    /// Stand-in for `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case asked to be skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// A failing case.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (skipped) case.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Result alias matching proptest's.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;
    use std::rc::Rc;

    /// A generator of random values (no shrinking in the shim).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Recursive strategies: apply `f` to the current strategy `depth`
        /// times (sizes are accepted for API compatibility and ignored).
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let mut cur = self.boxed();
            for _ in 0..depth {
                cur = f(cur).boxed();
            }
            cur
        }

        /// Type-erase.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// A cloneable type-erased strategy.
    pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies ([`crate::prop_oneof!`]).
    pub struct OneOf<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    /// Build a [`OneOf`] from type-erased options.
    pub fn one_of<V>(options: Vec<BoxedStrategy<V>>) -> OneOf<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + rng.below((hi - lo) as u64 + 1) as $t
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            // unit_f64 is half-open; fold the endpoint in via rounding
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    /// Regex-style string strategies, heavily simplified: a `&str` strategy
    /// generates printable strings (ASCII plus occasional multibyte
    /// codepoints); a trailing `{m,n}` repetition bound is honored, any
    /// other regex structure is ignored.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_repeat_bounds(self).unwrap_or((0, 64));
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| {
                    let r = rng.next_u64();
                    if r % 16 == 0 {
                        // sprinkle some multibyte/printable-unicode chars
                        char::from_u32(0xA1 + (r >> 8) as u32 % 0x500).unwrap_or('¿')
                    } else {
                        (0x20 + (r >> 8) % 0x5F) as u8 as char
                    }
                })
                .collect()
        }
    }

    fn parse_repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
        let open = pattern.rfind('{')?;
        let close = pattern.rfind('}')?;
        let body = pattern.get(open + 1..close)?;
        let (lo, hi) = body.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Length specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy producing vectors of `elem` with lengths in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` support for simple primitives.
pub trait ArbitraryValue: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy for a whole primitive domain, see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> strategy::Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    /// Uniform `true`/`false`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The whole boolean domain.
    pub const ANY: Any = Any;

    impl crate::strategy::Strategy for Any {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut crate::TestRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// One-stop imports matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

// Rc is unused directly here but re-exported paths reference the module.
#[doc(hidden)]
pub type __Rc<T> = Rc<T>;

/// The main property-test macro. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                for case in 0..cfg.cases as u64 {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            { $body }
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match __result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err(e) => {
                            panic!("proptest case {case} of {} failed: {e}", stringify!($name));
                        }
                    }
                }
            }
        )*
    };
}

/// Fallible assertion: fails the current case (with formatting) instead of
/// panicking, so the runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fallible equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`: {}", __l, __r, format!($($fmt)*)
        );
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(pair in (0..10u32, 0.0..1.0f64), v in collection::vec(1..5usize, 0..4)) {
            let (a, b) = pair;
            prop_assert!(a < 10);
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert!(v.len() < 4);
            for x in v {
                prop_assert!((1..5).contains(&x));
            }
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1u32), (5..9u32).prop_map(|v| v * 10)]) {
            prop_assert!(x == 1 || (50..90).contains(&x), "{x}");
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
