//! # sekitei — resource-aware deployment planning
//!
//! Facade crate re-exporting the whole workspace: a faithful, from-scratch
//! Rust reproduction of *"Optimal Resource-Aware Deployment Planning for
//! Component-based Distributed Applications"* (Kichkaylo & Karamcheti,
//! HPDC 2004) — the leveled, cost-optimal extension of the **Sekitei**
//! planner for the component placement problem (CPP).
//!
//! ## Quickstart
//!
//! ```
//! use sekitei::prelude::*;
//!
//! // The paper's Figure 3 "Tiny" scenario: 2 nodes, one 70-unit link,
//! // 30 CPU per node, client demands 90 units of the M stream.
//! let problem = sekitei::scenarios::tiny(LevelScenario::C);
//! let outcome = Planner::new(PlannerConfig::default()).plan(&problem).unwrap();
//! let plan = outcome.plan.expect("scenario C finds the 7-action plan");
//! assert_eq!(plan.steps.len(), 7);
//! ```
//!
//! See `examples/` for larger walkthroughs and `crates/bench` for the
//! binaries regenerating every table and figure of the paper.

pub use sekitei_compile as compile;
pub use sekitei_model as model;
pub use sekitei_obs as obs;
pub use sekitei_planner as planner;
pub use sekitei_sim as sim;
pub use sekitei_spec as spec;
pub use sekitei_topology as topology;

/// Canonical evaluation scenarios (Tiny / Small / Large / tradeoff).
pub mod scenarios {
    pub use sekitei_topology::scenarios::*;
}

/// One-stop imports for typical use.
pub mod prelude {
    pub use sekitei_model::{
        media_domain, CppProblem, Goal, Interval, LevelScenario, LevelSpec, MediaConfig, Network,
        StreamSource,
    };
    pub use sekitei_planner::{PlanOutcome, Planner, PlannerConfig};
    pub use sekitei_sim::validate_plan;
    pub use sekitei_topology::scenarios::{self, NetSize};
}
