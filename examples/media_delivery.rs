//! The paper's Figure 1 application end-to-end: deliver a combined media
//! stream from a server to a client across the 6-node *Small* network and
//! the 93-node transit-stub *Large* network, comparing level scenario B
//! (finds the short suboptimal plan of Figure 9 top) with scenario C
//! (finds the cost-optimal plan of Figure 9 bottom).
//!
//! Run with: `cargo run --release --example media_delivery`

use sekitei::planner::plan_metrics;
use sekitei::prelude::*;

fn solve(label: &str, problem: &sekitei::model::CppProblem) {
    let planner = Planner::new(PlannerConfig::default());
    let outcome = planner.plan(problem).expect("compiles");
    match &outcome.plan {
        Some(plan) => {
            let m = plan_metrics(problem, &outcome.task, plan);
            println!("--- {label}: {} actions, cost ≥ {:.1}", plan.len(), plan.cost_lower_bound);
            print!("{plan}");
            println!(
                "reserved bandwidth per LAN link: {:.1} units; per WAN link: {:.1} units",
                m.reserved_lan_bw, m.reserved_wan_bw
            );
            let report = validate_plan(problem, &outcome.task, plan);
            assert!(report.ok, "{label}: {:?}", report.violations);
            println!("simulation OK (real cost {:.2})\n", report.total_cost);
        }
        None => println!("--- {label}: no plan\n"),
    }
}

fn main() {
    println!("=== the Figure 1 network itself ===\n");
    // eight nodes, server on n7, client on n0, 70-unit bottleneck between
    // n4 and n1: the planner injects the Splitter/Zip — Unzip/Merger
    // pipeline around the thin link, exactly as the figure draws it.
    let p = scenarios::figure1(LevelScenario::C);
    let outcome = Planner::new(PlannerConfig::default()).plan(&p).expect("compiles");
    let plan = outcome.plan.expect("Figure 1 deploys");
    print!("{plan}");
    let report = validate_plan(&p, &outcome.task, &plan);
    assert!(report.ok);
    println!("per-link flows:\n{}", sekitei::sim::flow_report(&p, &report));

    println!("=== Small network (Figure 9) ===\n");
    // Scenario B has a single cutpoint at 100: the planner can bound
    // consumption but not distinguish costs, so it returns the shortest
    // plan — media crosses the LAN links raw, reserving 100 units each.
    solve("Small, scenario B (suboptimal)", &scenarios::small(LevelScenario::B));
    // Scenario C adds the cutpoint at the client demand 90: crossing costs
    // now reflect real bandwidth, and the planner prefers to split at the
    // server, sending only compressed text + images (65 units per link).
    solve("Small, scenario C (optimal)", &scenarios::small(LevelScenario::C));

    println!("=== Large 93-node transit-stub network (Figure 10) ===\n");
    solve("Large, scenario B", &scenarios::large(LevelScenario::B));
    solve("Large, scenario C", &scenarios::large(LevelScenario::C));

    // Structure of the Large network, for orientation.
    let p = scenarios::large(LevelScenario::C);
    let stats = sekitei::topology::network_stats(&p.network);
    println!(
        "Large network: {} nodes, {} links ({} LAN, {} WAN), diameter {} hops",
        stats.nodes,
        stats.links,
        stats.lan_links,
        stats.wan_links,
        stats.diameter.unwrap()
    );
}
