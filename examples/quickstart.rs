//! Quickstart: solve the paper's Figure 3 "Tiny" problem.
//!
//! Two nodes joined by a 70-unit WAN link; the server on `n0` can produce
//! up to 200 units of the media stream M, the client on `n1` needs at
//! least 90. Nodes have 30 CPU. Sending M directly does not fit the link,
//! and the greedy planner (scenario A, no resource levels) cannot place the
//! Splitter because processing all 200 available units would need 40 CPU.
//! With levels (scenario C) the planner finds the Figure 4 plan.
//!
//! Run with: `cargo run --release --example quickstart`

use sekitei::prelude::*;

fn main() {
    let planner = Planner::new(PlannerConfig::default());

    // Scenario A: the original greedy Sekitei — fails (paper §2.3).
    let greedy = sekitei::scenarios::tiny(LevelScenario::A);
    let outcome = planner.plan(&greedy).expect("compiles");
    assert!(outcome.plan.is_none());
    println!("scenario A (greedy, no levels): no plan — as the paper predicts\n");

    // Scenario C: levels [0,90), [90,100), [100,∞) on the M stream.
    let leveled = sekitei::scenarios::tiny(LevelScenario::C);
    let outcome = planner.plan(&leveled).expect("compiles");
    let plan = outcome.plan.expect("scenario C is solvable");
    println!("scenario C (leveled):");
    print!("{plan}");

    // The plan processes 100 units — the upper cutpoint of the chosen
    // level — even though the client only demands 90 (paper §4.2).
    let (_, source_bw) = plan.execution.source_values[0];
    println!("\nsource pushes {source_bw} units of M");

    // Validate end-to-end in the deployment simulator.
    let report = validate_plan(&leveled, &outcome.task, &plan);
    assert!(report.ok, "{:?}", report.violations);
    println!(
        "simulation: OK — delivered M, real cost {:.2} (planner bound {:.2})",
        report.total_cost, plan.cost_lower_bound
    );
}
