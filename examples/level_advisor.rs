//! Automatic level synthesis (the paper's §6 future work): start from a
//! completely unleveled specification — which the original greedy Sekitei
//! cannot solve — derive cutpoints from the demand constraints, and watch
//! the planner reach the hand-tuned scenario-C quality without any expert
//! input.
//!
//! Run with: `cargo run --release --example level_advisor`

use sekitei::model::{apply_suggestions, suggest_levels, LevelScenario};
use sekitei::planner::plan_metrics;
use sekitei::prelude::*;

fn main() {
    let planner = Planner::new(PlannerConfig::default());

    // the Small network with NO resource levels (scenario A)
    let mut problem = scenarios::small(LevelScenario::A);
    let outcome = planner.plan(&problem).expect("compiles");
    assert!(outcome.plan.is_none());
    println!("without levels: no plan (the greedy planner assumes 200-unit flows)\n");

    // derive cutpoints: each demand `iface >= c` seeds a cut at c and at
    // c·(1+headroom); seeds propagate through the linear transforms
    let suggestions = suggest_levels(&problem, 1.0 / 9.0);
    println!("suggested levels (demand 90, headroom 1/9 → cap 100):");
    for s in &suggestions {
        let cuts: Vec<String> = s.cutpoints.iter().map(|c| format!("{c:.2}")).collect();
        println!("  {}.{}: [{}]", s.iface, s.prop, cuts.join(", "));
    }

    let applied = apply_suggestions(&mut problem, &suggestions);
    println!("\napplied to {applied} interfaces; replanning…\n");

    let outcome = planner.plan(&problem).expect("compiles");
    let plan = outcome.plan.expect("advisor levels make it solvable");
    print!("{plan}");
    let m = plan_metrics(&problem, &outcome.task, &plan);
    println!(
        "\nreserved LAN bandwidth: {:.1} units — the same 65 the hand-crafted\n\
         scenario C reaches (paper Table 2, column 4).",
        m.reserved_lan_bw
    );
    assert!((m.reserved_lan_bw - 65.0).abs() < 1e-6);
    let report = validate_plan(&problem, &outcome.task, &plan);
    assert!(report.ok, "{:?}", report.violations);
    println!("verified in the simulator.");
}
