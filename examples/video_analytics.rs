//! An edge video-analytics pipeline with **two independent stream
//! sources**: cameras A and B feed GPU-bound detectors at the edge, whose
//! detections are fused and shipped over a thin WAN to a cloud dashboard.
//!
//! What this exercises beyond the media domain:
//! * two sources whose flows the planner binds independently under a
//!   *shared* GPU budget (greedy-within-level on both, 8+12 = 20 GPU
//!   exactly at the level caps),
//! * a custom `gpu` resource — detectors are never explicitly restricted
//!   to the edge, the GPU condition prunes camera/cloud placements
//!   naturally,
//! * a fusion component joining streams of *different* types.
//!
//! Run with: `cargo run --release --example video_analytics`

use sekitei::model::resource::names::{CPU, LBW};
use sekitei::model::{
    AssignOp, CmpOp, ComponentSpec, Cond, CppProblem, Effect, Expr, Goal, InterfaceSpec, LevelSpec,
    LinkClass, Network, ResourceDef, SpecVar, StreamSource,
};
use sekitei::prelude::*;

const GPU: &str = "gpu";

fn rate(i: &str) -> Expr<SpecVar> {
    Expr::var(SpecVar::iface(i, "rate"))
}

fn stream(name: &str, cuts: Vec<f64>) -> InterfaceSpec {
    InterfaceSpec::bandwidth_stream(name, "rate", LBW)
        .with_cross_cost(Expr::c(1.0) + rate(name) / Expr::c(10.0))
        .with_levels("rate", LevelSpec::new(cuts).unwrap())
}

fn detector(name: &str, input: &str, output: &str) -> ComponentSpec {
    ComponentSpec::new(name)
        .requires(input)
        .implements(output)
        .condition(Cond::new(Expr::var(SpecVar::node(GPU)), CmpOp::Ge, rate(input) / Expr::c(5.0)))
        .effect(Effect::new(
            SpecVar::iface(output, "rate"),
            AssignOp::Set,
            rate(input) * Expr::c(0.4),
        ))
        .effect(Effect::new(SpecVar::node(GPU), AssignOp::Sub, rate(input) / Expr::c(5.0)))
        .with_cost(Expr::c(1.0) + rate(input) / Expr::c(10.0))
}

fn build() -> CppProblem {
    let mut net = Network::new();
    let cam_a = net.add_node("camA", [(CPU, 10.0), (GPU, 0.0)]);
    let cam_b = net.add_node("camB", [(CPU, 10.0), (GPU, 0.0)]);
    let edge = net.add_node("edge", [(CPU, 40.0), (GPU, 20.0)]);
    let cloud = net.add_node("cloud", [(CPU, 100.0), (GPU, 0.0)]);
    net.add_link(cam_a, edge, LinkClass::Lan, [(LBW, 200.0)]);
    net.add_link(cam_b, edge, LinkClass::Lan, [(LBW, 200.0)]);
    net.add_link(edge, cloud, LinkClass::Wan, [(LBW, 60.0)]);

    let interfaces = vec![
        stream("CamA", vec![40.0]),
        stream("CamB", vec![60.0]),
        stream("DetA", vec![16.0]),
        stream("DetB", vec![24.0]),
        stream("Feed", vec![30.0, 40.0]),
    ];
    let fuse = ComponentSpec::new("Fuse")
        .requires("DetA")
        .requires("DetB")
        .implements("Feed")
        .condition(Cond::new(
            Expr::var(SpecVar::node(CPU)),
            CmpOp::Ge,
            (rate("DetA") + rate("DetB")) / Expr::c(4.0),
        ))
        .effect(Effect::new(
            SpecVar::iface("Feed", "rate"),
            AssignOp::Set,
            rate("DetA") + rate("DetB"),
        ))
        .effect(Effect::new(
            SpecVar::node(CPU),
            AssignOp::Sub,
            (rate("DetA") + rate("DetB")) / Expr::c(4.0),
        ))
        .with_cost(Expr::c(1.0) + (rate("DetA") + rate("DetB")) / Expr::c(10.0));
    let dashboard = ComponentSpec::new("Dashboard")
        .requires("Feed")
        .condition(Cond::new(rate("Feed"), CmpOp::Ge, Expr::c(30.0)))
        .with_cost(Expr::c(1.0));

    let mut gpu_res = ResourceDef::node(GPU);
    gpu_res.consumable = true;
    let p = CppProblem {
        network: net,
        resources: vec![ResourceDef::node(CPU), ResourceDef::link(LBW), gpu_res],
        interfaces,
        components: vec![
            detector("DetectA", "CamA", "DetA"),
            detector("DetectB", "CamB", "DetB"),
            fuse,
            dashboard,
        ],
        sources: vec![
            StreamSource::up_to("CamA", cam_a, "rate", 50.0),
            StreamSource::up_to("CamB", cam_b, "rate", 80.0),
        ],
        pre_placed: vec![],
        goals: vec![Goal { component: "Dashboard".into(), node: cloud }],
    };
    p.validate().expect("well-formed");
    p
}

fn main() {
    let problem = build();
    let outcome = Planner::new(PlannerConfig::default()).plan(&problem).expect("compiles");
    let plan = outcome.plan.expect("pipeline deploys");
    print!("{plan}");

    // both detectors land on the GPU node — nothing restricted them there,
    // the gpu >= rate/5 condition did
    for det in ["DetectA", "DetectB"] {
        assert!(
            plan.steps.iter().any(|s| s.name.starts_with(&format!("place({det},edge)"))),
            "{det} must run at the edge:\n{plan}"
        );
    }
    // greedy-within-level binds both cameras at their level caps
    let mut sources: Vec<f64> = plan.execution.source_values.iter().map(|(_, v)| *v).collect();
    sources.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(sources, vec![40.0, 60.0], "level caps bind both cameras");

    let report = validate_plan(&problem, &outcome.task, &plan);
    assert!(report.ok, "{:?}", report.violations);
    println!("\nper-link flows:\n{}", sekitei::sim::flow_report(&problem, &report));
    for (iface, node, prop, v) in &report.delivered {
        if iface == "Feed" && prop == "rate" {
            println!("delivered Feed.rate = {v} at {}", problem.network.node(*node).name);
        }
    }
    println!("\ntwo cameras, one GPU budget, one thin WAN — deployed and verified.");
}
