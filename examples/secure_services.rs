//! Qualitative link constraints (paper §2.1: "other properties such as
//! link security"): a web-service request stream carries sensitive data
//! and may only cross links marked `secure`, unless an Encryptor/Decryptor
//! pair wraps it first. Depending on the topology the planner either
//! routes over the secure backbone or inserts the crypto components —
//! the same auxiliary-component insertion as Figure 1, driven by a
//! *qualitative* constraint instead of bandwidth.
//!
//! Run with: `cargo run --release --example secure_services`

use sekitei::model::resource::names::{CPU, LBW};
use sekitei::model::resource::{Elasticity, ResourceDef};
use sekitei::model::{
    AssignOp, CmpOp, ComponentSpec, Cond, CppProblem, Effect, Expr, Goal, InterfaceSpec, LevelSpec,
    LinkClass, Network, SpecVar, StreamSource,
};
use sekitei::prelude::*;

const SECURE: &str = "secure";
const DEMAND: f64 = 40.0;

fn ibw(i: &str) -> Expr<SpecVar> {
    Expr::var(SpecVar::iface(i, "ibw"))
}

fn domain() -> (Vec<ResourceDef>, Vec<InterfaceSpec>, Vec<ComponentSpec>) {
    let mut secure_res = ResourceDef::link(SECURE);
    secure_res.consumable = false;
    secure_res.elasticity = Elasticity::Rigid;
    let resources = vec![ResourceDef::node(CPU), ResourceDef::link(LBW), secure_res];

    let levels = LevelSpec::new(vec![DEMAND]).unwrap();
    // plaintext requests may only cross secure links
    let req = InterfaceSpec::bandwidth_stream("Req", "ibw", LBW)
        .with_cross_cost(Expr::c(1.0) + ibw("Req") / Expr::c(10.0))
        .with_levels("ibw", levels.clone());
    let req = InterfaceSpec {
        cross_conditions: vec![Cond::new(
            Expr::var(SpecVar::link(SECURE)),
            CmpOp::Ge,
            Expr::c(1.0),
        )],
        ..req
    };
    // ciphertext crosses anything (10% framing overhead)
    let enc = InterfaceSpec::bandwidth_stream("Enc", "ibw", LBW)
        .with_cross_cost(Expr::c(1.0) + ibw("Enc") / Expr::c(10.0))
        .with_levels("ibw", levels.scaled(1.1));

    let encryptor = ComponentSpec::new("Encryptor")
        .requires("Req")
        .implements("Enc")
        .condition(Cond::new(Expr::var(SpecVar::node(CPU)), CmpOp::Ge, ibw("Req") / Expr::c(8.0)))
        .effect(Effect::new(SpecVar::iface("Enc", "ibw"), AssignOp::Set, ibw("Req") * Expr::c(1.1)))
        .effect(Effect::new(SpecVar::node(CPU), AssignOp::Sub, ibw("Req") / Expr::c(8.0)))
        .with_cost(Expr::c(1.0) + ibw("Req") / Expr::c(10.0));
    let decryptor = ComponentSpec::new("Decryptor")
        .requires("Enc")
        .implements("Req")
        .condition(Cond::new(Expr::var(SpecVar::node(CPU)), CmpOp::Ge, ibw("Enc") / Expr::c(8.0)))
        .effect(Effect::new(SpecVar::iface("Req", "ibw"), AssignOp::Set, ibw("Enc") / Expr::c(1.1)))
        .effect(Effect::new(SpecVar::node(CPU), AssignOp::Sub, ibw("Enc") / Expr::c(8.0)))
        .with_cost(Expr::c(1.0) + ibw("Enc") / Expr::c(10.0));
    let backend = ComponentSpec::new("Backend")
        .requires("Req")
        .condition(Cond::new(ibw("Req"), CmpOp::Ge, Expr::c(DEMAND)))
        .with_cost(Expr::c(1.0));

    (resources, vec![req, enc], vec![encryptor, decryptor, backend])
}

/// gateway —(secure? backbone)— dc, plus an always-insecure public route.
fn problem(backbone_secure: bool) -> CppProblem {
    let mut net = Network::new();
    let gw = net.add_node("gw", [(CPU, 30.0)]);
    let mid = net.add_node("mid", [(CPU, 30.0)]);
    let dc = net.add_node("dc", [(CPU, 30.0)]);
    let sec = if backbone_secure { 1.0 } else { 0.0 };
    net.add_link(gw, mid, LinkClass::Wan, [(LBW, 100.0), (SECURE, sec)]);
    net.add_link(mid, dc, LinkClass::Wan, [(LBW, 100.0), (SECURE, sec)]);
    // cheaper direct public link — never secure
    net.add_link(gw, dc, LinkClass::Wan, [(LBW, 100.0), (SECURE, 0.0)]);

    let (resources, interfaces, components) = domain();
    let p = CppProblem {
        network: net,
        resources,
        interfaces,
        components,
        sources: vec![StreamSource::up_to("Req", gw, "ibw", 80.0)],
        pre_placed: vec![],
        goals: vec![Goal { component: "Backend".into(), node: dc }],
    };
    p.validate().expect("well-formed");
    p
}

fn main() {
    let planner = Planner::new(PlannerConfig::default());

    println!("=== secure backbone available ===");
    let p = problem(true);
    let o = planner.plan(&p).unwrap();
    let plan = o.plan.expect("solvable via the backbone");
    print!("{plan}");
    assert!(
        plan.steps.iter().all(|s| !s.name.contains("cryptor")),
        "plaintext may ride the secure backbone"
    );
    assert!(validate_plan(&p, &o.task, &plan).ok);

    println!("\n=== backbone insecure: crypto pair required ===");
    let p = problem(false);
    let o = planner.plan(&p).unwrap();
    let plan = o.plan.expect("solvable with encryption");
    print!("{plan}");
    assert!(plan.steps.iter().any(|s| s.name.contains("place(Encryptor,gw)")));
    assert!(plan.steps.iter().any(|s| s.name.contains("place(Decryptor,dc)")));
    // and the ciphertext takes the cheap 1-hop public link
    assert!(plan.steps.iter().any(|s| s.name.contains("cross(Enc,gw→dc)")), "{plan}");
    let report = validate_plan(&p, &o.task, &plan);
    assert!(report.ok, "{:?}", report.violations);

    println!("\nqualitative security constraints honored in both worlds.");
}
