//! Scenario 2 / Figure 5: user-specified cost functions choose between
//! plans. A text stream can reach the client either over a 3-link
//! high-bandwidth path (raw) or a 2-link low-bandwidth path that needs
//! Zip/Unzip. Sweeping the relative price of link bandwidth moves the
//! optimum from one to the other — "the cheapest plan is not necessarily
//! the one with the smallest number of steps."
//!
//! Run with: `cargo run --release --example cost_tradeoffs`

use sekitei::prelude::*;

fn main() {
    let planner = Planner::new(PlannerConfig::default());
    println!("{:>8} {:>9} {:>10}  choice", "w_link", "actions", "cost LB");
    let mut last_shape = None;
    for &w in &[0.1, 0.25, 0.5, 0.75, 0.83, 1.0, 1.5, 2.5] {
        let problem = scenarios::tradeoff(w);
        let outcome = planner.plan(&problem).expect("compiles");
        let plan = outcome.plan.expect("both paths are feasible");
        let compressed = plan.steps.iter().any(|s| s.name.contains("Zip"));
        let shape = if compressed {
            "compress onto the short path (2 crossings + Zip/Unzip)"
        } else {
            "raw over the long path (3 crossings)"
        };
        if last_shape.is_some() && last_shape != Some(compressed) {
            println!("{:->60}", " crossover ");
        }
        last_shape = Some(compressed);
        println!("{w:>8.2} {:>9} {:>10.2}  {shape}", plan.len(), plan.cost_lower_bound);

        // both choices validate in the simulator
        let report = validate_plan(&problem, &outcome.task, &plan);
        assert!(report.ok, "{:?}", report.violations);
    }
    println!("\nWith cheap bandwidth the planner spends link capacity to save");
    println!("components; with expensive bandwidth it spends CPU to save links.");
}
