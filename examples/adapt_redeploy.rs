//! Deployment adaptation (the paper's §6 future-work item): when the
//! environment changes under a running application, replan while *reusing*
//! components that can stay and *migrating* the ones that must move —
//! at costs that differ from initial deployment.
//!
//! A diamond network offers two 70-unit WAN routes, so the initial plan
//! needs no compression at all: it splits the media stream at the server
//! and sends the text stream (63–70 units) over one WAN link and the image
//! stream (27–30 units) over the other. Then the text stream's WAN link
//! degrades to 40 units — too thin for T. Adaptation keeps Splitter,
//! Merger and Client exactly where they run (at the cheap keep cost) and
//! simply swaps the two streams' routes; replanning from scratch would pay
//! full placement costs for the identical configuration.
//!
//! Run with: `cargo run --release --example adapt_redeploy`

use sekitei::model::adapt::{adapt_problem, AdaptConfig};
use sekitei::model::resource::names::{CPU, LBW};
use sekitei::model::{media_domain, CppProblem, Goal, LinkClass, Network, StreamSource};
use sekitei::prelude::*;
use sekitei::sim::existing_from_plan;

/// Build the diamond: s —LAN— a —WAN(bw_a)— k and s —LAN— b —WAN(70)— k.
fn diamond(bw_via_a: f64) -> CppProblem {
    let mut net = Network::new();
    let s = net.add_node("s", [(CPU, 30.0)]);
    let a = net.add_node("a", [(CPU, 30.0)]);
    let b = net.add_node("b", [(CPU, 30.0)]);
    let k = net.add_node("k", [(CPU, 30.0)]);
    net.add_link(s, a, LinkClass::Lan, [(LBW, 150.0)]);
    net.add_link(a, k, LinkClass::Wan, [(LBW, bw_via_a)]);
    net.add_link(s, b, LinkClass::Lan, [(LBW, 150.0)]);
    net.add_link(b, k, LinkClass::Wan, [(LBW, 70.0)]);
    let d = media_domain(LevelScenario::C);
    CppProblem {
        network: net,
        resources: d.resources,
        interfaces: d.interfaces,
        components: d.components,
        sources: vec![StreamSource::up_to("M", s, "ibw", 200.0)],
        pre_placed: vec![],
        goals: vec![Goal { component: "Client".into(), node: k }],
    }
}

fn main() {
    let planner = Planner::new(PlannerConfig::default());

    // 1. initial deployment on the healthy network
    let healthy = diamond(70.0);
    let outcome = planner.plan(&healthy).unwrap();
    let initial = outcome.plan.expect("healthy network solvable");
    println!("=== initial deployment ===");
    print!("{initial}");

    // 2. the WAN link via `a` degrades to 40 units
    let degraded = diamond(40.0);
    println!("\n=== WAN link a—k degrades: 70 → 40 units ===\n");

    // 3a. naive repair: replan from scratch, paying full placement costs
    let fresh = planner.plan(&degraded).unwrap().plan.expect("still solvable");
    println!("replan from scratch: {} actions, cost ≥ {:.2}", fresh.len(), fresh.cost_lower_bound);

    // 3b. adaptation: keep is cheap, migration pays a tariff
    let existing = existing_from_plan(&healthy, &initial);
    let adapted_problem = adapt_problem(&degraded, &existing, &AdaptConfig::default());
    let outcome = planner.plan(&adapted_problem).unwrap();
    let adapted = outcome.plan.expect("adaptation solvable");
    println!(
        "adaptive replan:     {} actions, cost ≥ {:.2}",
        adapted.len(),
        adapted.cost_lower_bound
    );
    println!("\n=== adapted deployment ===");
    print!("{adapted}");

    assert!(
        adapted.cost_lower_bound < fresh.cost_lower_bound,
        "reuse must beat fresh instantiation"
    );
    // every previously running component stays on its node
    for e in &existing.placements {
        let kept = adapted.steps.iter().any(|st| {
            st.name.starts_with(&format!(
                "place({},{})",
                e.component,
                adapted_problem.network.node(e.node).name
            ))
        });
        assert!(kept, "{} should be kept at {}", e.component, e.node);
    }
    // ... and the streams take both WAN routes now
    let via_a = adapted.steps.iter().any(|s| s.name.contains("a→k"));
    let via_b = adapted.steps.iter().any(|s| s.name.contains("b→k"));
    assert!(via_a && via_b, "the streams must use both WAN routes");

    let report = validate_plan(&adapted_problem, &outcome.task, &adapted);
    assert!(report.ok, "{:?}", report.violations);
    println!("\nadapted deployment verified: components reused, streams re-routed.");
}
