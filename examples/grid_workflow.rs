//! A grid-computing workflow (the paper's introduction scenario): a task
//! graph exchanging logical files, mapped onto concrete hosts with replica
//! selection, auxiliary compression ("GridFTP session") insertion, and
//! resource-aware placement — all built from scratch through the public
//! API rather than the canned media domain.
//!
//! Pipeline:  Raw observations → Filter → Derived → Render → Viz → Portal.
//! The Render task is licensed only for the visualization host `p0`, so
//! the 50+-unit Derived file must cross a 30-unit WAN link — impossible
//! raw, fine once the planner inserts Pack/Unpack (0.4× compression).
//! Two Raw replicas exist; the planner picks the cheaper (closer) one.
//!
//! Run with: `cargo run --release --example grid_workflow`

use sekitei::model::resource::names::{CPU, LBW};
use sekitei::model::{
    AssignOp, CmpOp, ComponentSpec, Cond, CppProblem, Effect, Expr, Goal, InterfaceSpec, LevelSpec,
    LinkClass, Network, ResourceDef, SpecVar, StreamSource,
};
use sekitei::planner::plan_metrics;
use sekitei::prelude::*;

fn rate(iface: &str) -> Expr<SpecVar> {
    Expr::var(SpecVar::iface(iface, "rate"))
}

fn cpu() -> Expr<SpecVar> {
    Expr::var(SpecVar::node(CPU))
}

/// A file-transfer stream with bandwidth-capped delivery and levels scaled
/// from the Raw levels by `factor`.
fn file_stream(name: &str, factor: f64, raw_levels: &LevelSpec) -> InterfaceSpec {
    InterfaceSpec::bandwidth_stream(name, "rate", LBW)
        .with_cross_cost(Expr::c(1.0) + rate(name) / Expr::c(10.0))
        .with_levels("rate", raw_levels.scaled(factor))
}

/// A 1-in/1-out processing task: `out.rate := ratio · in.rate`,
/// `cpu -= in.rate / cpu_div`.
fn task(name: &str, input: &str, output: &str, ratio: f64, cpu_div: f64) -> ComponentSpec {
    ComponentSpec::new(name)
        .requires(input)
        .implements(output)
        .condition(Cond::new(cpu(), CmpOp::Ge, rate(input) / Expr::c(cpu_div)))
        .effect(Effect::new(
            SpecVar::iface(output, "rate"),
            AssignOp::Set,
            rate(input) * Expr::c(ratio),
        ))
        .effect(Effect::new(SpecVar::node(CPU), AssignOp::Sub, rate(input) / Expr::c(cpu_div)))
        .with_cost(Expr::c(1.0) + rate(input) / Expr::c(10.0))
}

fn build_problem() -> CppProblem {
    // ---- network: compute cluster — WAN — portal site -------------------
    let mut net = Network::new();
    let c2 = net.add_node("c2", [(CPU, 40.0)]); // deep cluster node (replica 2)
    let c1 = net.add_node("c1", [(CPU, 40.0)]);
    let c0 = net.add_node("c0", [(CPU, 40.0)]); // replica 1 lives here
    let g = net.add_node("gw", [(CPU, 10.0)]); // cluster gateway
    let p0 = net.add_node("p0", [(CPU, 40.0)]); // licensed visualization host
    let p1 = net.add_node("p1", [(CPU, 10.0)]); // the portal users see
    net.add_link(c2, c1, LinkClass::Lan, [(LBW, 200.0)]);
    net.add_link(c1, c0, LinkClass::Lan, [(LBW, 200.0)]);
    net.add_link(c0, g, LinkClass::Lan, [(LBW, 200.0)]);
    net.add_link(g, p0, LinkClass::Wan, [(LBW, 30.0)]); // the bottleneck
    net.add_link(p0, p1, LinkClass::Lan, [(LBW, 150.0)]);

    // ---- domain ---------------------------------------------------------
    // Raw rate levels: below demand / demanded regime / all-you-can-pull.
    let raw_levels = LevelSpec::new(vec![100.0, 110.0]).unwrap();
    let interfaces = vec![
        file_stream("Raw", 1.0, &raw_levels),
        file_stream("Derived", 0.5, &raw_levels),
        file_stream("Packed", 0.2, &raw_levels), // 0.4 × Derived
        file_stream("Viz", 0.1, &raw_levels),
    ];
    let portal = ComponentSpec::new("Portal")
        .requires("Viz")
        .condition(Cond::new(rate("Viz"), CmpOp::Ge, Expr::c(10.0)))
        .with_cost(Expr::c(1.0) + rate("Viz") / Expr::c(10.0));
    let components = vec![
        task("Filter", "Raw", "Derived", 0.5, 4.0),
        task("Pack", "Derived", "Packed", 0.4, 10.0),
        task("Unpack", "Packed", "Derived", 2.5, 4.0),
        // Render is licensed only for the visualization host
        task("Render", "Derived", "Viz", 0.2, 2.0).only_on(["p0"]),
        portal,
    ];

    CppProblem {
        network: net,
        resources: vec![ResourceDef::node(CPU), ResourceDef::link(LBW)],
        interfaces,
        components,
        sources: vec![
            StreamSource::up_to("Raw", c0, "rate", 150.0), // near replica
            StreamSource::up_to("Raw", c2, "rate", 300.0), // far, bigger replica
        ],
        pre_placed: vec![],
        goals: vec![Goal { component: "Portal".into(), node: p1 }],
    }
}

fn main() {
    let problem = build_problem();
    problem.validate().expect("well-formed domain");

    let outcome = Planner::new(PlannerConfig::default()).plan(&problem).expect("compiles");
    let plan = outcome.plan.expect("the workflow deploys");
    print!("{plan}");

    // The planner picked the near replica and inserted Pack/Unpack around
    // the WAN bottleneck.
    let names: Vec<&str> = plan.steps.iter().map(|s| s.name.as_str()).collect();
    assert!(names.iter().any(|n| n.contains("place(Pack,")), "compression inserted");
    assert!(names.iter().any(|n| n.contains("place(Unpack,")), "decompression inserted");
    assert!(names.iter().any(|n| n.contains("place(Render,p0)")), "license honored");
    assert!(
        names.iter().all(|n| !n.contains("c2")),
        "the far replica should lose to the near one: {names:?}"
    );

    let m = plan_metrics(&problem, &outcome.task, &plan);
    println!("\nWAN bandwidth reserved: {:.1} of 30 units", m.reserved_wan_bw);
    println!("total CPU charged across the grid: {:.1}", m.total_cpu);

    let report = validate_plan(&problem, &outcome.task, &plan);
    assert!(report.ok, "{:?}", report.violations);
    for (iface, node, prop, v) in &report.delivered {
        if iface == "Viz" {
            println!("delivered {iface}.{prop} = {v:.1} at node {node}");
        }
    }
    println!("\nworkflow deployed and verified.");
}
